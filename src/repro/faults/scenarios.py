"""The scenario matrix the seed-sweep fuzzer runs.

Each :class:`Scenario` turns a seed into a concrete
:class:`~repro.faults.spec.FaultSchedule` (deterministically — the only
randomness is ``random.Random(f"{seed}/{name}")``), names the systems it
applies to, and states the liveness bounds the run must meet.  Safety
(zero history-checker violations) is asserted for every scenario
unconditionally.

Fault windows are placed inside the measured portion of the run and,
unless the scenario is explicitly permanent, end well before cool-down,
so the liveness drain observes a fault-free network — the paper's
setting for "the fallback eventually finishes every stalled
transaction".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import LivenessConfig
from repro.faults.spec import (
    ByzantineClientFault,
    ByzantineReplicaFault,
    CrashFault,
    FaultSchedule,
    LinkFault,
    PartitionFault,
)

#: System kinds the campaign can build.
SYSTEMS = ("basil", "tapir", "txsmr")


@dataclass(frozen=True)
class Scale:
    """Run-size knobs for one campaign case."""

    duration: float = 0.25
    warmup: float = 0.05
    clients: int = 10
    keys: int = 300

    @property
    def end_time(self) -> float:
        """Traffic stops here (warmup + measured + cool-down)."""
        return self.warmup + self.duration + self.warmup

    def window(self, begin_frac: float, end_frac: float) -> tuple[float, float]:
        """A fault window placed inside the measured portion of the run."""
        return (
            self.warmup + begin_frac * self.duration,
            self.warmup + end_frac * self.duration,
        )

    @classmethod
    def quick(cls) -> "Scale":
        return cls(duration=0.12, warmup=0.03, clients=6, keys=150)


@dataclass(frozen=True)
class Scenario:
    """One named point of the matrix."""

    name: str
    description: str
    build: Callable[[int, Scale, random.Random], tuple["FaultSchedule.__class__", ...]]
    systems: tuple[str, ...] = SYSTEMS
    liveness: LivenessConfig = field(default_factory=LivenessConfig)
    config_overrides: dict[str, Any] = field(default_factory=dict)

    def schedule(self, seed: int, scale: Scale) -> FaultSchedule:
        rng = random.Random(f"{seed}/{self.name}")
        faults = tuple(self.build(seed, scale, rng))
        return FaultSchedule(name=self.name, faults=faults).validate()


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def _no_faults(seed: int, scale: Scale, rng: random.Random):
    return ()


def _partition_minority(seed: int, scale: Scale, rng: random.Random):
    """Isolate one replica per shard for a while, then heal.

    r2 exists in every system and is never the PBFT leader (r0), so the
    baseline keeps its quorum without view changes.
    """
    start, end = scale.window(0.2, 0.5)
    return (PartitionFault(groups=(("s*/r2",), ("*",)), start=start, end=end),)


def _partition_permanent(seed: int, scale: Scale, rng: random.Random):
    """Permanently isolate f replicas (within every system's budget)."""
    start, _ = scale.window(0.3, 0.5)
    return (PartitionFault(groups=(("s*/r2",), ("*",)), start=start, end=None),)


def _partition_majority_heal(seed: int, scale: Scale, rng: random.Random):
    """Split a Basil shard 3/3 — no commit quorum until it heals."""
    start, end = scale.window(0.3, 0.55)
    groups = (("s*/r0", "s*/r1", "s*/r2"), ("*",))
    return (PartitionFault(groups=groups, start=start, end=end),)


def _crash_restart(seed: int, scale: Scale, rng: random.Random):
    """Crash one (seed-chosen) replica mid-run; restart before cool-down."""
    victim = rng.randrange(3)  # index valid for every system's n >= 3
    at, restart_at = scale.window(0.25, 0.6)
    return (CrashFault(node=f"s*/r{victim}", at=at, restart_at=restart_at),)


def _crash_permanent(seed: int, scale: Scale, rng: random.Random):
    """Crash one replica per shard forever (stays within f = 1)."""
    victim = rng.randrange(3)
    at, _ = scale.window(0.3, 0.5)
    return (CrashFault(node=f"s*/r{victim}", at=at, restart_at=None),)


def _link_chaos(seed: int, scale: Scale, rng: random.Random):
    """Lossy, jittery, duplicating, reordering network for a window."""
    start, end = scale.window(0.1, 0.7)
    return (
        LinkFault(
            start=start,
            end=end,
            drop_rate=0.02,
            extra_delay=50e-6,
            delay_jitter=200e-6,
            duplicate_rate=0.05,
            reorder_rate=0.10,
            reorder_spread=500e-6,
        ),
    )


def _byz_replica(behaviour: str):
    def build(seed: int, scale: Scale, rng: random.Random):
        return (ByzantineReplicaFault(node=f"s*/r{rng.randrange(6)}", behaviour=behaviour),)

    return build


def _byz_clients(behaviour: str, count: int = 2):
    def build(seed: int, scale: Scale, rng: random.Random):
        return (ByzantineClientFault(behaviour=behaviour, count=count),)

    return build


def _combined(seed: int, scale: Scale, rng: random.Random):
    """Everything at once: the schedule a testbed cannot reproduce."""
    part_start, part_end = scale.window(0.15, 0.35)
    crash_at, restart_at = scale.window(0.4, 0.7)
    chaos_start, chaos_end = scale.window(0.1, 0.75)
    return (
        PartitionFault(groups=(("s*/r0",), ("*",)), start=part_start, end=part_end),
        CrashFault(node="s*/r1", at=crash_at, restart_at=restart_at),
        LinkFault(
            start=chaos_start, end=chaos_end,
            drop_rate=0.01, delay_jitter=100e-6,
            duplicate_rate=0.03, reorder_rate=0.05,
        ),
        ByzantineClientFault(behaviour="stall-early", count=1),
        ByzantineClientFault(behaviour="stall-late", count=1),
    )


# ---------------------------------------------------------------------------
# The matrix
# ---------------------------------------------------------------------------
#: Liveness for scenarios whose faults persist or whose clients
#: deliberately strand transactions no correct client depends on: the
#: undecided-residue bound is lifted, safety checks remain.
_RELAXED = LivenessConfig(max_undecided=None)
#: Harsh scenarios can additionally starve a recovery past its retry
#: budget; tolerate a handful of ProtocolErrors, never a safety gap.
_HARSH = LivenessConfig(max_undecided=None, max_protocol_errors=5)

SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="no-faults",
            description="empty schedule (anchors the determinism guard)",
            build=_no_faults,
        ),
        Scenario(
            name="partition-minority",
            description="f replicas per shard isolated, then healed",
            build=_partition_minority,
        ),
        Scenario(
            name="partition-permanent",
            description="f replicas per shard isolated forever",
            build=_partition_permanent,
            liveness=_RELAXED,
        ),
        Scenario(
            name="partition-majority-heal",
            description="3/3 shard split: no quorum until heal",
            build=_partition_majority_heal,
            systems=("basil",),
            liveness=_HARSH,
        ),
        Scenario(
            name="crash-restart",
            description="one replica crashes mid-run and restarts",
            build=_crash_restart,
            systems=("basil", "tapir"),
        ),
        Scenario(
            name="crash-permanent",
            description="one replica per shard crashes and stays down",
            build=_crash_permanent,
            systems=("basil", "tapir"),
            liveness=_RELAXED,
        ),
        Scenario(
            name="link-chaos",
            description="drop/delay/duplicate/reorder on every link",
            build=_link_chaos,
            systems=("basil", "tapir"),
            liveness=_HARSH,
        ),
        Scenario(
            name="byz-replica-silent",
            description="one unresponsive replica per shard",
            build=_byz_replica("silent"),
            systems=("basil",),
        ),
        Scenario(
            name="byz-replica-abstain",
            description="one replica ignores ST1 (kills the fast path)",
            build=_byz_replica("prepare-abstain"),
            systems=("basil",),
        ),
        Scenario(
            name="byz-replica-stale",
            description="one replica serves oldest committed versions",
            build=_byz_replica("stale-read"),
            systems=("basil",),
        ),
        Scenario(
            name="byz-replica-fabricate",
            description="one replica invents read values",
            build=_byz_replica("fabricate-read"),
            systems=("basil",),
        ),
        Scenario(
            name="byz-replica-equivocate",
            description="one replica alternates commit/abort votes",
            build=_byz_replica("equivocate-vote"),
            systems=("basil",),
        ),
        Scenario(
            name="byz-clients-stall-early",
            description="clients send ST1 and vanish (Fig 7)",
            build=_byz_clients("stall-early"),
            systems=("basil",),
            liveness=_RELAXED,
        ),
        Scenario(
            name="byz-clients-stall-late",
            description="clients finish Prepare, never write back (Fig 7)",
            build=_byz_clients("stall-late"),
            systems=("basil",),
            liveness=_RELAXED,
        ),
        Scenario(
            name="byz-clients-equiv-real",
            description="clients equivocate ST2 when justifiable (Fig 7)",
            build=_byz_clients("equiv-real"),
            systems=("basil",),
            liveness=_RELAXED,
        ),
        # Note: the fuzzer runs equiv-forced clients against *honest*
        # replicas (unlike Fig 7's artificial allow_unjustified_st2 mode,
        # which disables the ST2 justification check and is unsafe by
        # construction): replicas must reject the unjustified ST2s and
        # safety must hold despite the forced-equivocation attempts.
        Scenario(
            name="byz-clients-equiv-forced",
            description="forced ST2 equivocation vs validating replicas",
            build=_byz_clients("equiv-forced"),
            systems=("basil",),
            liveness=_RELAXED,
        ),
        Scenario(
            name="combined",
            description="partition + crash + chaos + Byzantine clients",
            build=_combined,
            systems=("basil",),
            liveness=_HARSH,
        ),
    )
}

#: The three-scenario subset `make fault-smoke` runs.
SMOKE_SCENARIOS = ("partition-minority", "crash-restart", "byz-clients-stall-early")


# ---------------------------------------------------------------------------
# Composition with the open-loop load subsystem
# ---------------------------------------------------------------------------
def overload_window_schedule(
    warmup: float, duration: float, drop_rate: float = 0.02
) -> FaultSchedule:
    """A link-chaos window sized for an open-loop run's measured portion.

    The load subsystem's generator takes any ``FaultSchedule`` via its
    ``injector`` argument; this helper builds the common composition —
    overload *plus* a degraded network — so capacity experiments can ask
    what admission control does when packet loss is also eating goodput.
    """
    start = warmup + 0.1 * duration
    end = warmup + 0.7 * duration
    return FaultSchedule(
        name="overload-chaos",
        faults=(
            LinkFault(
                start=start,
                end=end,
                drop_rate=drop_rate,
                delay_jitter=200e-6,
                reorder_rate=0.05,
                reorder_spread=500e-6,
            ),
        ),
    ).validate()
