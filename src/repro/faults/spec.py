"""Declarative fault specifications.

A :class:`FaultSchedule` is plain, JSON-serializable data describing
*what goes wrong and when* in one simulated run: network partitions
(healing or permanent), per-link message drop/delay/duplicate/reorder,
replica crash/restart with state retention, and activation of the
Byzantine client/replica behaviours from :mod:`repro.byzantine`.

Schedules are interpreted by :class:`repro.faults.injector.FaultInjector`.
Everything here is deterministic given a seed: probabilistic faults draw
exclusively from the simulator's dedicated ``"faults"`` RNG stream, so a
(config, seed, schedule) triple identifies a run exactly — which is what
makes failure bundles replayable.

Node selectors are :mod:`fnmatch`-style patterns over node names
(``"s0/r1"``, ``"s*/r0"``, ``"client/*"``, ``"*"``), matched
case-sensitively.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatchcase
from typing import Union

from repro.byzantine.clients import BEHAVIOURS as CLIENT_BEHAVIOURS
from repro.byzantine.replicas import REPLICA_BEHAVIOURS


class FaultSpecError(ValueError):
    """A fault schedule that cannot be interpreted."""


def _check_window(kind: str, start: float, end: float | None) -> None:
    if start < 0:
        raise FaultSpecError(f"{kind}: start must be >= 0, got {start}")
    if end is not None and end <= start:
        raise FaultSpecError(f"{kind}: end {end} must be > start {start}")


def _check_rate(kind: str, name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise FaultSpecError(f"{kind}: {name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFault:
    """Degrade messages whose (src, dst) match the patterns.

    All effects apply only while the fault is active (``start <= now``
    and, unless permanent, ``now < end``).  ``reorder_rate`` delays a
    matching message by up to ``reorder_spread`` extra seconds — the
    simulator's way of reordering, since delivery order is delay order.
    Duplicates are delivered once more after an extra in-[0,
    ``reorder_spread``) offset.
    """

    kind: str = field(default="link", init=False)
    src: str = "*"
    dst: str = "*"
    start: float = 0.0
    end: float | None = None
    drop_rate: float = 0.0
    extra_delay: float = 0.0
    delay_jitter: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_spread: float = 0.002

    def validate(self) -> None:
        _check_window("link", self.start, self.end)
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            _check_rate("link", name, getattr(self, name))
        for name in ("extra_delay", "delay_jitter", "reorder_spread"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"link: {name} must be >= 0")

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def matches(self, src: str, dst: str) -> bool:
        return fnmatchcase(src, self.src) and fnmatchcase(dst, self.dst)


@dataclass(frozen=True)
class PartitionFault:
    """Drop every message crossing between two (or more) groups.

    Each group is a tuple of node patterns.  A node matching no group is
    unrestricted (it talks to everyone) — so "isolate s0/r0" is simply
    ``groups=(("s0/r0",), ("*",))``.  A node matching several groups
    belongs to the first.  ``end=None`` makes the partition permanent.
    """

    kind: str = field(default="partition", init=False)
    groups: tuple[tuple[str, ...], ...] = ()
    start: float = 0.0
    end: float | None = None

    def validate(self) -> None:
        _check_window("partition", self.start, self.end)
        if len(self.groups) < 2:
            raise FaultSpecError("partition: needs at least two groups")

    def active(self, now: float) -> bool:
        return now >= self.start and (self.end is None or now < self.end)

    def _group_of(self, node: str) -> int | None:
        for index, patterns in enumerate(self.groups):
            if any(fnmatchcase(node, pattern) for pattern in patterns):
                return index
        return None

    def separates(self, src: str, dst: str) -> bool:
        src_group = self._group_of(src)
        if src_group is None:
            return False
        dst_group = self._group_of(dst)
        return dst_group is not None and src_group != dst_group


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop a replica at ``at``; optionally restart it later.

    ``node`` is a pattern resolved against the system's replicas when the
    injector attaches (so ``"s*/r1"`` crashes replica 1 of every shard).
    Restarted replicas retain durable state (store, decided transactions,
    cast votes) but lose volatile state — see ``BasilReplica.on_restart``.
    """

    kind: str = field(default="crash", init=False)
    node: str = ""
    at: float = 0.0
    restart_at: float | None = None

    def validate(self) -> None:
        if not self.node:
            raise FaultSpecError("crash: node pattern is required")
        _check_window("crash", self.at, self.restart_at)


@dataclass(frozen=True)
class ByzantineReplicaFault:
    """Swap matching replicas for a Byzantine variant before traffic.

    ``behaviour`` keys :data:`repro.byzantine.replicas.REPLICA_BEHAVIOURS`.
    """

    kind: str = field(default="byz-replica", init=False)
    node: str = ""
    behaviour: str = "silent"

    def validate(self) -> None:
        if not self.node:
            raise FaultSpecError("byz-replica: node pattern is required")
        if self.behaviour not in REPLICA_BEHAVIOURS:
            raise FaultSpecError(
                f"byz-replica: unknown behaviour {self.behaviour!r} "
                f"(known: {sorted(REPLICA_BEHAVIOURS)})"
            )


@dataclass(frozen=True)
class ByzantineClientFault:
    """Include ``count`` Byzantine clients of the given behaviour.

    Interpreted by the campaign runner when it builds the client mix
    (Basil systems only); ``behaviour`` keys the paper's Sec 6.4 client
    strategies in :data:`repro.byzantine.clients.BEHAVIOURS`.
    """

    kind: str = field(default="byz-client", init=False)
    behaviour: str = "stall-late"
    count: int = 1
    faulty_fraction: float = 1.0

    def validate(self) -> None:
        if self.behaviour not in CLIENT_BEHAVIOURS:
            raise FaultSpecError(
                f"byz-client: unknown behaviour {self.behaviour!r} "
                f"(known: {sorted(CLIENT_BEHAVIOURS)})"
            )
        if self.count < 1:
            raise FaultSpecError("byz-client: count must be >= 1")
        _check_rate("byz-client", "faulty_fraction", self.faulty_fraction)


Fault = Union[LinkFault, PartitionFault, CrashFault, ByzantineReplicaFault, ByzantineClientFault]

_FAULT_KINDS: dict[str, type] = {
    "link": LinkFault,
    "partition": PartitionFault,
    "crash": CrashFault,
    "byz-replica": ByzantineReplicaFault,
    "byz-client": ByzantineClientFault,
}


@dataclass(frozen=True)
class FaultSchedule:
    """A named, ordered collection of faults for one run."""

    name: str = ""
    faults: tuple[Fault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def validate(self) -> "FaultSchedule":
        for fault in self.faults:
            fault.validate()
        return self

    # -- selectors used by the injector/campaign ------------------------
    def of_kind(self, kind: str) -> tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == kind)

    @property
    def links(self) -> tuple[LinkFault, ...]:
        return self.of_kind("link")  # type: ignore[return-value]

    @property
    def partitions(self) -> tuple[PartitionFault, ...]:
        return self.of_kind("partition")  # type: ignore[return-value]

    @property
    def crashes(self) -> tuple[CrashFault, ...]:
        return self.of_kind("crash")  # type: ignore[return-value]

    @property
    def byz_replicas(self) -> tuple[ByzantineReplicaFault, ...]:
        return self.of_kind("byz-replica")  # type: ignore[return-value]

    @property
    def byz_clients(self) -> tuple[ByzantineClientFault, ...]:
        return self.of_kind("byz-client")  # type: ignore[return-value]

    # -- serialization (repro bundles) ----------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name, "faults": [asdict(f) for f in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        if not isinstance(data, dict):
            raise FaultSpecError("schedule must be a JSON object")
        faults = []
        for entry in data.get("faults", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            fault_cls = _FAULT_KINDS.get(kind)
            if fault_cls is None:
                raise FaultSpecError(f"unknown fault kind {kind!r}")
            fields = dict(entry)
            # JSON arrays come back as lists; partition groups are tuples.
            if fault_cls is PartitionFault:
                fields["groups"] = tuple(tuple(g) for g in fields.get("groups", ()))
            try:
                fault = fault_cls(**fields)
            except TypeError as err:
                raise FaultSpecError(f"bad {kind} fault: {err}") from err
            faults.append(fault)
        return cls(name=data.get("name", ""), faults=tuple(faults)).validate()

    @classmethod
    def from_json(cls, payload: str) -> "FaultSchedule":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as err:
            raise FaultSpecError(f"schedule is not valid JSON: {err}") from err
        return cls.from_dict(data)
