"""Deterministic fault injection and seed-sweep campaigns.

See ``docs/simulation.md`` ("Fault injection & simulation testing") and
``python -m repro.faults list`` for the scenario matrix.
"""

from repro.faults.campaign import (
    CaseResult,
    execute_case,
    replay_bundle,
    run_case,
    sweep,
)
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import SCENARIOS, SMOKE_SCENARIOS, Scale, Scenario
from repro.faults.spec import (
    ByzantineClientFault,
    ByzantineReplicaFault,
    CrashFault,
    Fault,
    FaultSchedule,
    FaultSpecError,
    LinkFault,
    PartitionFault,
)

__all__ = [
    "ByzantineClientFault",
    "ByzantineReplicaFault",
    "CaseResult",
    "CrashFault",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpecError",
    "LinkFault",
    "PartitionFault",
    "SCENARIOS",
    "SMOKE_SCENARIOS",
    "Scale",
    "Scenario",
    "execute_case",
    "replay_bundle",
    "run_case",
    "sweep",
]
