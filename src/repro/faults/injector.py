"""The runtime that applies a :class:`FaultSchedule` to one system.

The injector composes with the simulator through two existing seams:

* it wraps the network's :class:`~repro.sim.network.NetworkAdversary`
  (keeping the previous adversary as its inner stage), so partitions and
  link faults act on every message after the normal latency model; and
* it schedules crash/restart callbacks on the simulator clock, using
  ``Network.unregister``/``Node.crash`` so a dead replica neither
  receives messages nor fires stale callbacks.

Determinism contract (mirrors the tracer's): with an **empty schedule**
the injector draws no randomness, schedules no events, and forwards the
inner adversary's verdict unchanged — a run with an attached empty
injector is byte-identical (same trace digest) to a run without one.
All probabilistic decisions draw from the dedicated ``"faults"`` RNG
stream, never from the network's, so enabling faults does not perturb
the no-fault portion of the schedule's randomness either.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any

from repro.byzantine.replicas import REPLICA_BEHAVIOURS
from repro.errors import SimulationError
from repro.faults.spec import FaultSchedule
from repro.sim.network import PassiveAdversary

#: Stat counters the injector maintains (all start at zero).
_STATS = (
    "partition_drops",
    "link_drops",
    "duplicates",
    "reorders",
    "delayed",
    "crashes",
    "restarts",
    "byz_replicas",
)


class FaultInjector:
    """Interprets one schedule against one system; attach exactly once."""

    def __init__(self, schedule: FaultSchedule | None = None) -> None:
        self.schedule = (schedule or FaultSchedule()).validate()
        self.sim: Any = None
        self.network: Any = None
        self.system: Any = None
        self._inner: Any = PassiveAdversary()
        self._rng = None
        self._crashed: dict[str, Any] = {}
        self._links = self.schedule.links
        self._partitions = self.schedule.partitions
        self.stats: dict[str, int] = {name: 0 for name in _STATS}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, system: Any) -> "FaultInjector":
        """Install into ``system`` (any of Basil/TAPIR/TxSMR).

        Must run before traffic starts: Byzantine replica swaps reuse the
        replica's identity key, and crash events are scheduled on the
        simulator clock.  Returns self for chaining.

        Partition-aware: when ``system`` is one slice of a space-parallel
        deployment (``system.partition`` is a PlanSlice), node patterns
        are validated against the *whole* deployment's roster but only
        act on replicas this partition hosts — so the same schedule
        serializes into every partition and each one applies its local
        share.  Link/partition faults are evaluated on the *sending*
        partition (this injector wraps the sender's adversary, which
        also runs on the cross-partition export path), so the set of
        messages a schedule affects does not depend on worker packing.
        """
        if self.network is not None:
            raise SimulationError("fault injector is already attached")
        self.system = system
        self.sim = system.sim
        self.network = system.network
        self._apply_byz_replicas(system)
        self._inner = self.network.adversary
        self.network.adversary = self
        for fault in self.schedule.crashes:
            for name in self._matching_replicas(system, fault.node):
                self.sim.call_at(fault.at, self._crash, name)
                if fault.restart_at is not None:
                    self.sim.call_at(fault.restart_at, self._restart, name)
        return self

    @staticmethod
    def _matching_replicas(system: Any, pattern: str) -> list[str]:
        """Replica names ``pattern`` selects, restricted to local ones.

        In a partitioned system the pattern is checked against the full
        roster (raising on a pattern that matches no deployment node,
        exactly as the sequential path raises on an unknown replica),
        then filtered down to the replicas this partition actually
        hosts — which may legitimately be none.
        """
        partition = getattr(system, "partition", None)
        if partition is None:
            names = [name for name in system.replicas if fnmatchcase(name, pattern)]
            if not names:
                raise SimulationError(f"fault pattern {pattern!r} matches no replica")
            return names
        roster = [name for name in partition.roster() if fnmatchcase(name, pattern)]
        if not roster:
            raise SimulationError(
                f"fault pattern {pattern!r} matches no node in the deployment roster"
            )
        return [name for name in roster if name in system.replicas]

    def _apply_byz_replicas(self, system: Any) -> None:
        for fault in self.schedule.byz_replicas:
            replica_cls = REPLICA_BEHAVIOURS[fault.behaviour]
            if not hasattr(system, "replace_replica"):
                raise SimulationError(
                    "byz-replica faults need a system with replace_replica (Basil)"
                )
            for name in self._matching_replicas(system, fault.node):
                system.replace_replica(name, replica_cls)
                self.stats["byz_replicas"] += 1

    @property
    def rng(self):
        """The dedicated fault RNG stream (created on first use)."""
        if self._rng is None:
            self._rng = self.sim.rng("faults")
        return self._rng

    # ------------------------------------------------------------------
    # NetworkAdversary interface
    # ------------------------------------------------------------------
    def intercept(self, src: str, dst: str, message: Any, base_delay: float) -> float | None:
        delay = self._inner.intercept(src, dst, message, base_delay)
        if delay is None:
            return None
        now = self.sim.now
        for partition in self._partitions:
            if partition.active(now) and partition.separates(src, dst):
                self.stats["partition_drops"] += 1
                return None
        for link in self._links:
            if not link.active(now) or not link.matches(src, dst):
                continue
            if link.drop_rate and self.rng.random() < link.drop_rate:
                self.stats["link_drops"] += 1
                return None
            if link.extra_delay or link.delay_jitter:
                delay += link.extra_delay
                if link.delay_jitter:
                    delay += self.rng.uniform(0.0, link.delay_jitter)
                self.stats["delayed"] += 1
            if link.duplicate_rate and self.rng.random() < link.duplicate_rate:
                offset = self.rng.uniform(0.0, link.reorder_spread)
                self.network.inject(src, dst, message, delay + offset)
                self.stats["duplicates"] += 1
            if link.reorder_rate and self.rng.random() < link.reorder_rate:
                delay += self.rng.uniform(0.0, link.reorder_spread)
                self.stats["reorders"] += 1
        return delay

    # ------------------------------------------------------------------
    # Crash / restart events
    # ------------------------------------------------------------------
    def _crash(self, name: str) -> None:
        if name in self._crashed:
            return  # two crash faults matched the same node
        node = self.network.unregister(name)
        node.crash()
        self._crashed[name] = node
        self.stats["crashes"] += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(name, "fault", "crash")

    def _restart(self, name: str) -> None:
        node = self._crashed.pop(name, None)
        if node is None:
            return
        node.restart()
        self.network.register(node)
        self.stats["restarts"] += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(name, "fault", "restart")

    # ------------------------------------------------------------------
    def faults_applied(self) -> int:
        """Total individual fault actions taken (for reports/tests)."""
        return sum(self.stats.values())
