"""Compare a fresh perf run against the last recorded ``BENCH_*.json``.

The contract (ISSUE 3): ``make perf-smoke`` fails when any benchmark's
wall clock regresses by more than the threshold (default 15%) against
the most recently recorded baseline.  Only benches present in both runs
are compared — quick and full suites use disjoint bench names, and a
baseline recorded before a benchmark existed simply doesn't gate it.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass

from repro.perf.harness import BenchEntry

#: Default allowed wall-clock slowdown before the check fails.
DEFAULT_THRESHOLD = 0.15

_BENCH_FILE = re.compile(r"^BENCH_(\w+)\.json$")


def find_baseline(root: str) -> str | None:
    """Path of the most recently recorded ``BENCH_*.json`` under ``root``.

    "Most recent" prefers the highest PR number in the filename
    (BENCH_PR4 beats BENCH_PR3), falling back to modification time for
    names without one — so re-running an old baseline never shadows a
    newer PR's numbers.
    """
    candidates = []
    for entry in os.listdir(root):
        match = _BENCH_FILE.match(entry)
        if not match:
            continue
        path = os.path.join(root, entry)
        tag = match.group(1)
        pr_match = re.search(r"PR(\d+)", tag)
        pr_rank = int(pr_match.group(1)) if pr_match else -1
        candidates.append((pr_rank, os.path.getmtime(path), path))
    if not candidates:
        return None
    return max(candidates)[2]


def load_entries(path: str) -> dict[str, dict]:
    with open(path) as fh:
        data = json.load(fh)
    return {entry["bench"]: entry for entry in data}


@dataclass
class Regression:
    bench: str
    baseline_wall_s: float
    current_wall_s: float

    @property
    def slowdown(self) -> float:
        if self.baseline_wall_s <= 0:
            return 0.0
        return self.current_wall_s / self.baseline_wall_s - 1.0

    def __str__(self) -> str:
        return (
            f"{self.bench}: {self.baseline_wall_s:.3f}s -> "
            f"{self.current_wall_s:.3f}s ({self.slowdown * 100:+.1f}%)"
        )


def compare_to_baseline(
    current: list[BenchEntry],
    baseline_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> tuple[list[Regression], list[str]]:
    """Return (regressions beyond threshold, human-readable report lines)."""
    baseline = load_entries(baseline_path)
    regressions: list[Regression] = []
    report: list[str] = [f"baseline: {baseline_path} (threshold {threshold * 100:.0f}%)"]
    for entry in current:
        base = baseline.get(entry.bench)
        if base is None:
            report.append(f"  {entry.bench}: no baseline entry, skipped")
            continue
        reg = Regression(entry.bench, base["wall_s"], entry.wall_s)
        marker = "REGRESSION" if reg.slowdown > threshold else "ok"
        report.append(f"  {reg}  [{marker}]")
        if reg.slowdown > threshold:
            regressions.append(reg)
    return regressions, report
