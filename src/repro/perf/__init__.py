"""Wall-clock performance harness for the simulator itself.

Everything else in this repo measures *simulated* time; this package
measures how fast the simulator runs on the host.  It exists to lock in
the kernel hot-path work: `python -m repro.perf record` writes a
``BENCH_*.json`` baseline, and `python -m repro.perf check` (or
``make perf-smoke``) re-runs the suite and fails on a >15% wall-clock
regression against the most recent recorded baseline.

Schema of a ``BENCH_*.json`` entry::

    {"bench": "<name>", "wall_s": <float>, "events_per_s": <float>,
     "sim_tput": <float>}

``events_per_s`` is kernel events processed per wall-clock second (the
number the kernel overhaul optimizes); ``sim_tput`` is the benchmark's
*simulated* committed-transactions-per-simulated-second (a determinism
canary: it must not drift when only wall-clock performance changes).
"""

from repro.perf.harness import BenchEntry, run_all, write_results
from repro.perf.compare import compare_to_baseline, find_baseline

__all__ = [
    "BenchEntry",
    "run_all",
    "write_results",
    "compare_to_baseline",
    "find_baseline",
]
