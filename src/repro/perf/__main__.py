"""CLI: ``python -m repro.perf record|check``.

* ``record [--out BENCH_PR3.json] [--quick]`` — run the suite and write
  a baseline file (quick mode appends quick entries to the same file if
  it exists, so one file can hold both scales).
* ``check [--quick] [--threshold 0.15]`` — run the suite and compare
  against the most recent ``BENCH_*.json``; exit 1 on regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.perf.compare import DEFAULT_THRESHOLD, compare_to_baseline, find_baseline
from repro.perf.harness import run_all, write_results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.perf")
    sub = parser.add_subparsers(dest="cmd", required=True)

    rec = sub.add_parser("record", help="run the suite and write a baseline")
    rec.add_argument("--out", default="BENCH_PR3.json")
    rec.add_argument("--quick", action="store_true")
    rec.add_argument("--prof", action="store_true",
                     help="attach wall-clock attribution; each row gains a "
                     "top-3 subsystem summary (adds overhead — don't record "
                     "gating baselines with it)")

    chk = sub.add_parser("check", help="run the suite and gate on the baseline")
    chk.add_argument("--quick", action="store_true")
    chk.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD)
    chk.add_argument("--baseline", default=None, help="explicit BENCH_*.json path")

    args = parser.parse_args(argv)

    if args.cmd == "record":
        entries = run_all(quick=args.quick, prof=args.prof)
        if args.quick and os.path.exists(args.out):
            # Merge quick entries into an existing (full) baseline.
            with open(args.out) as fh:
                existing = {e["bench"]: e for e in json.load(fh)}
            for entry in entries:
                existing[entry.bench] = entry.to_dict()
            with open(args.out, "w") as fh:
                json.dump(list(existing.values()), fh, indent=2)
                fh.write("\n")
        else:
            write_results(args.out, entries)
        for entry in entries:
            print(
                f"{entry.bench:<24} wall {entry.wall_s:7.3f}s  "
                f"{entry.events_per_s:>12,.0f} events/s  sim_tput {entry.sim_tput:,.0f}"
            )
            if entry.prof:
                shares = "  ".join(
                    f"{row['subsystem']} {row['share'] * 100:.0f}%"
                    for row in entry.prof
                )
                print(f"{'':<24} prof: {shares}")
        print(f"wrote {args.out}")
        return 0

    baseline = args.baseline or find_baseline(os.getcwd())
    if baseline is None:
        print("no BENCH_*.json baseline found; run `python -m repro.perf record` first")
        return 1
    entries = run_all(quick=args.quick)
    regressions, report = compare_to_baseline(entries, baseline, args.threshold)
    print("\n".join(report))
    if regressions:
        print(f"{len(regressions)} wall-clock regression(s) beyond threshold")
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
