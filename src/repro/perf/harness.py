"""The wall-clock benchmark suite: kernel microbenches + figure slices.

Three kernel microbenchmarks stress the paths the PR 3 overhaul touched
(timer scheduling/cancellation, task trampolining, queue+timeout
mailboxes), and two protocol slices run seeded Basil configurations that
mirror the Figure 5a / 5c setups.  All are deterministic in simulated
time; only the wall clock varies between hosts and runs.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

from repro.sim.events import Queue
from repro.sim.loop import Simulator


@dataclass
class BenchEntry:
    """One row of a ``BENCH_*.json`` file."""

    bench: str
    wall_s: float
    events_per_s: float
    sim_tput: float
    #: Top-3 wall-clock attribution shares (``--prof`` runs only):
    #: ``[{subsystem, wall_s, share, calls}, ...]``.  Omitted from the
    #: JSON row when absent so baselines stay byte-stable.
    prof: list[dict] | None = None

    def to_dict(self) -> dict:
        row = asdict(self)
        if row.get("prof") is None:
            row.pop("prof", None)
        return row


def _attach_profiler(sim: Simulator):
    """Attribution hook-up for a microbench sim (``prof=True`` runs)."""
    from repro.prof.profiler import install_profiler

    return install_profiler(sim)


def _prof_summary(profiler) -> list[dict] | None:
    if profiler is None:
        return None
    from repro.prof.profiler import top_shares

    return top_shares(profiler.table(), 3)


# ----------------------------------------------------------------------
# Kernel microbenchmarks
# ----------------------------------------------------------------------
def bench_kernel_timers(n: int, prof: bool = False) -> BenchEntry:
    """Schedule n timers, cancel half (the wait_for pattern), run the rest."""
    sim = Simulator(seed=1)
    profiler = _attach_profiler(sim) if prof else None
    counter = [0]

    def tick() -> None:
        counter[0] += 1

    t0 = time.perf_counter()
    handles = [sim.call_later(0.001 * (i % 97), tick) for i in range(n)]
    for handle in handles[::2]:
        handle.cancel()
    sim.run()
    wall = time.perf_counter() - t0
    assert counter[0] == n - len(handles[::2])
    return BenchEntry(
        bench=f"kernel-timers-{n}",
        wall_s=wall,
        events_per_s=sim.events_processed / wall if wall > 0 else 0.0,
        sim_tput=0.0,
        prof=_prof_summary(profiler),
    )


def bench_kernel_tasks(n: int, prof: bool = False) -> BenchEntry:
    """n task pairs ping-pong through sleeps (the trampoline hot path)."""
    sim = Simulator(seed=2)
    profiler = _attach_profiler(sim) if prof else None
    done = [0]

    async def worker(rounds: int) -> None:
        for _ in range(rounds):
            await sim.sleep(0.0001)
        done[0] += 1

    t0 = time.perf_counter()
    for _ in range(n):
        sim.create_task(worker(20))
    sim.run()
    wall = time.perf_counter() - t0
    assert done[0] == n
    return BenchEntry(
        bench=f"kernel-tasks-{n}",
        wall_s=wall,
        events_per_s=sim.events_processed / wall if wall > 0 else 0.0,
        sim_tput=0.0,
        prof=_prof_summary(profiler),
    )


def bench_kernel_queue(n: int, prof: bool = False) -> BenchEntry:
    """Producer/consumer mailboxes under wait_for (the protocol idiom)."""
    sim = Simulator(seed=3)
    profiler = _attach_profiler(sim) if prof else None
    received = [0]

    async def consumer(q: Queue, count: int) -> None:
        for _ in range(count):
            await sim.wait_for(q.get(), timeout=10.0)
            received[0] += 1

    async def producer(q: Queue, count: int) -> None:
        for _ in range(count):
            await sim.sleep(0.0001)
            q.put(object())

    t0 = time.perf_counter()
    queues = [Queue(sim) for _ in range(8)]
    per_queue = n // 8
    for q in queues:
        sim.create_task(consumer(q, per_queue))
        sim.create_task(producer(q, per_queue))
    sim.run()
    wall = time.perf_counter() - t0
    assert received[0] == per_queue * 8
    return BenchEntry(
        bench=f"kernel-queue-{n}",
        wall_s=wall,
        events_per_s=sim.events_processed / wall if wall > 0 else 0.0,
        sim_tput=0.0,
        prof=_prof_summary(profiler),
    )


# ----------------------------------------------------------------------
# Protocol slices (per-figure sim throughput)
# ----------------------------------------------------------------------
def _basil_run(
    name: str,
    *,
    num_shards: int,
    crypto_enabled: bool,
    num_clients: int,
    duration: float,
    warmup: float,
    prof: bool = False,
) -> BenchEntry:
    from repro.bench.runner import ExperimentRunner
    from repro.config import CryptoConfig, SystemConfig
    from repro.core.system import BasilSystem
    from repro.workloads.ycsb import YCSBWorkload

    config = SystemConfig(
        f=1,
        num_shards=num_shards,
        seed=2024,
        crypto=CryptoConfig(enabled=crypto_enabled),
    )
    system = BasilSystem(config)
    profiler = None
    if prof:
        from repro.prof.profiler import install_profiler

        profiler = install_profiler(system.sim, system)
    workload = YCSBWorkload(num_keys=1000, reads=2, writes=2)
    runner = ExperimentRunner(
        system,
        workload,
        num_clients=num_clients,
        duration=duration,
        warmup=warmup,
        name=name,
    )
    t0 = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - t0
    return BenchEntry(
        bench=name,
        wall_s=wall,
        events_per_s=system.sim.events_processed / wall if wall > 0 else 0.0,
        sim_tput=result.throughput,
        prof=_prof_summary(profiler),
    )


def run_all(quick: bool = False, prof: bool = False) -> list[BenchEntry]:
    """Run the full suite; ``quick`` shrinks sizes for the smoke test.

    Quick and full entries carry different bench names, so a quick check
    never compares against a full-scale baseline (or vice versa).
    ``prof`` additionally records each bench's top-3 subsystem
    attribution shares into the rows (simulated schedules unchanged —
    the hooks read only the wall clock — but wall itself pays the frame
    overhead, so don't record gating baselines with it on).
    """
    if quick:
        return [
            bench_kernel_timers(20_000, prof=prof),
            bench_kernel_tasks(500, prof=prof),
            bench_kernel_queue(8_000, prof=prof),
            _basil_run(
                "basil-fig5c-quick",
                num_shards=2,
                crypto_enabled=True,
                num_clients=10,
                duration=0.08,
                warmup=0.02,
                prof=prof,
            ),
        ]
    return [
        bench_kernel_timers(200_000, prof=prof),
        bench_kernel_tasks(5_000, prof=prof),
        bench_kernel_queue(80_000, prof=prof),
        _basil_run(
            "basil-fig5c-sig",
            num_shards=2,
            crypto_enabled=True,
            num_clients=40,
            duration=0.3,
            warmup=0.1,
            prof=prof,
        ),
        _basil_run(
            "basil-fig5a-nosig",
            num_shards=1,
            crypto_enabled=False,
            num_clients=40,
            duration=0.3,
            warmup=0.1,
            prof=prof,
        ),
    ]


def write_results(path: str, entries: list[BenchEntry]) -> None:
    import json

    with open(path, "w") as fh:
        json.dump([entry.to_dict() for entry in entries], fh, indent=2)
        fh.write("\n")
