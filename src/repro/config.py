"""Configuration objects for systems, networks, and cost models.

All tunables referenced in the paper's evaluation (replication factor,
batch size, read-quorum size, clock-skew bound delta, crypto on/off, shard
count) live here so that experiments are plain data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

#: Convenient time units (the simulator's clock is in seconds).
US = 1e-6
MS = 1e-3
SECOND = 1.0


@dataclass(frozen=True)
class NetworkConfig:
    """Shape of the simulated network.

    Defaults approximate the paper's CloudLab m510 testbed: 0.15 ms ping,
    i.e. 75 us one-way latency, with mild jitter.
    """

    one_way_latency: float = 75 * US
    jitter: float = 10 * US
    #: Probability an individual message is dropped (retransmission is the
    #: sender's problem; Basil clients re-send on timeout).
    drop_rate: float = 0.0


@dataclass(frozen=True)
class CryptoConfig:
    """Cost model for cryptographic operations, charged in simulated time.

    Defaults are calibrated to ed25519-donna on a 2 GHz core (the paper's
    hardware): ~52 us per signature, ~130 us per verification, and SHA-256
    hashing at ~0.4 us per 256-byte block.
    """

    enabled: bool = True
    sign_cost: float = 52 * US
    verify_cost: float = 130 * US
    hash_cost_per_block: float = 0.4 * US
    hash_block_bytes: int = 256
    #: Whether clients sign state-changing requests (ST1/ST2/writeback,
    #: and the SMR baselines' ordered ops) and replicas verify them.
    #: Reads are session-MAC'd (negligible) in every system.
    authenticate_requests: bool = True
    #: Sec 4.4 "Signature Aggregation": when on, verifying a quorum of
    #: matching votes costs one signature verification plus a hash per
    #: vote (BLS-style aggregate), instead of one verification per vote.
    #: The paper describes this optimization but leaves it unimplemented;
    #: benchmarks/test_ablation_aggregation.py measures what it buys.
    signature_aggregation: bool = False
    #: Memoize (signer, digest) -> verdict per verifying node: a signature
    #: a node has already verified is not re-charged.  Models the
    #: verification caching Basil's implementation performs when the same
    #: certificate crosses a node twice (e.g. cross-shard writeback after
    #: ST2), which otherwise saturates simulated clients (Figure 5c).
    verify_memo: bool = True
    #: Charge quorum verification as one ed25519 batch verification
    #: (Basil batch-verifies certificate signatures) instead of k
    #: sequential verifications.  Structural checks still run per member.
    #: Off by default: the ~40% discount on every quorum lifts Basil above
    #: TAPIR and flattens the reply-batching curve, breaking the paper's
    #: Figure 4/6b shapes — our verify_cost is calibrated for sequential
    #: verification.  Enable per-experiment to study the optimization.
    batch_verify: bool = False
    #: Throughput multiple of batch verification over one-at-a-time
    #: verification; ~2x is the ed25519-donna batch figure for the small
    #: batches (3-6 signatures) quorum certificates produce.
    batch_verify_speedup: float = 2.0

    def batch_verify_cost(self, count: int) -> float:
        """Simulated CPU time to batch-verify ``count`` signatures.

        First signature at full cost, the rest at ``1/speedup`` — the
        amortization profile of ed25519 batch verification.
        """
        if not self.enabled or count <= 0:
            return 0.0
        return self.verify_cost * (1.0 + (count - 1) / self.batch_verify_speedup)

    def hash_cost(self, nbytes: int) -> float:
        """Simulated CPU time to hash ``nbytes`` bytes."""
        if not self.enabled:
            return 0.0
        blocks = max(1, (nbytes + self.hash_block_bytes - 1) // self.hash_block_bytes)
        return blocks * self.hash_cost_per_block


@dataclass(frozen=True)
class LivenessConfig:
    """Bounds a fault-injection run must meet after faults stop.

    Safety (zero :class:`repro.verify.history.HistoryChecker` violations)
    is unconditional; these bounds state the *liveness* a scenario
    promises — e.g. "the fallback eventually commits or aborts every
    stalled transaction" becomes ``max_undecided = 0`` after ``drain``
    seconds of fault-free time.  Scenarios with permanent faults or
    adversarial clients relax them explicitly.
    """

    #: Fault-free simulated seconds to run after the measured window so
    #: retries, recoveries, and writebacks can settle.
    drain: float = 0.5
    #: The run must have committed at least this many transactions.
    min_commits: int = 1
    #: Max transactions still prepared-but-undecided somewhere after the
    #: drain (None disables the check).
    max_undecided: int | None = 0
    #: Max client transactions that died with a ProtocolError (recovery
    #: starvation); 0 for every scenario whose faults heal.
    max_protocol_errors: int = 0


@dataclass(frozen=True)
class ArrivalConfig:
    """Open-loop arrival process (:mod:`repro.load.arrivals`).

    ``rate`` is the *mean* offered load in transactions per simulated
    second for every process shape; the shapes differ in variance:

    * ``poisson`` — exponential inter-arrivals (M/G/k offered load).
    * ``uniform`` — inter-arrivals uniform in ``(1 ± spread) / rate``;
      ``spread=0`` is a perfectly paced arrival comb.
    * ``bursty`` — on/off MMPP: a two-state modulating chain whose ON
      state offers ``peak_ratio * rate`` and whose OFF state offers
      whatever keeps the long-run mean at ``rate``.
    """

    process: str = "poisson"
    rate: float = 1000.0
    #: uniform: half-width of the inter-arrival window as a fraction of
    #: the mean gap (0 = fixed spacing, must stay < 1).
    spread: float = 0.5
    #: bursty: ON-state rate as a multiple of the mean rate (> 1).
    peak_ratio: float = 3.0
    #: bursty: long-run fraction of time spent in the ON state; must
    #: satisfy ``peak_ratio * on_fraction <= 1`` so the OFF rate is >= 0.
    on_fraction: float = 0.3
    #: bursty: mean length of one ON+OFF cycle, seconds (dwells are
    #: exponential with means ``cycle * on_fraction`` / ``cycle * (1 -
    #: on_fraction)``).
    cycle: float = 0.02


@dataclass(frozen=True)
class AdmissionConfig:
    """Client-proxy admission control (:mod:`repro.load.admission`).

    ``policy`` selects the algorithm:

    * ``none`` — admit everything (pure open loop).
    * ``static-cap`` — at most ``cap`` transactions in flight; excess
      arrivals are shed (``mode="shed"``) or parked and retried
      (``mode="delay"``) until ``max_queue_delay`` expires.
    * ``aimd`` — additive-increase / multiplicative-decrease shedding:
      the in-flight cap grows by ``additive_increase`` per healthy
      ``sample_interval`` and shrinks by ``decrease_factor`` whenever
      replica queue depth or utilization (via ``Node.load_signal``)
      crosses the high-water marks.
    """

    policy: str = "none"
    #: static-cap: max admitted-but-unfinished transactions.
    cap: int = 64
    #: static-cap: what to do with an over-cap arrival (shed | delay).
    mode: str = "shed"
    #: delay mode: how long a parked arrival waits between re-checks.
    retry_delay: float = 2 * MS
    #: delay mode: park at most this long before shedding.
    max_queue_delay: float = 50 * MS
    # -- aimd knobs -----------------------------------------------------
    initial_cap: float = 16.0
    min_cap: float = 4.0
    additive_increase: float = 4.0
    #: gentle backoff: the sawtooth averages ~(1+decrease_factor)/2 of
    #: the converged cap, so 0.85 holds >90% of knee goodput where 0.5
    #: (TCP's beta) would idle a quarter of the capacity away.
    decrease_factor: float = 0.85
    #: min spacing between signal samples (sampled lazily on arrivals;
    #: never schedules events of its own).
    sample_interval: float = 5 * MS
    #: overloaded when any replica's queued work items per core exceed
    #: this...
    queue_high_water: float = 4.0
    #: ...or when windowed utilization of the busiest replica does.
    target_utilization: float = 0.95


@dataclass(frozen=True)
class NodeConfig:
    """Compute shape of one server: paper uses 8-core 2.0 GHz machines."""

    cores: int = 8
    #: Baseline (non-crypto) CPU time to parse/process one message.
    message_overhead: float = 4 * US


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration for a Basil (or baseline) deployment."""

    #: Number of tolerated Byzantine replicas per shard.
    f: int = 1
    num_shards: int = 1
    #: Clock-skew admission bound (the paper's delta, sized from NTP skew).
    delta: float = 50 * MS
    #: Per-node clock offset is drawn uniformly from [-skew, +skew].
    clock_skew: float = 1 * MS

    #: Reply-batching factor b (Sec 4.4).  1 disables batching.
    batch_size: int = 4
    #: Max time a replica holds a partial batch before flushing it.
    batch_timeout: float = 0.3 * MS

    #: Consensus batch size for the SMR baselines (the paper found
    #: TxHotStuff best at 4 and TxBFT-SMaRt at 16).
    smr_batch_size: int = 16
    #: BFT-SMaRt-style batch wait: the leader holds a partial batch for
    #: this long before ordering it (drives the baselines' latency under
    #: light or contention-throttled load; at saturation batches fill
    #: long before the timeout).
    smr_batch_timeout: float = 8 * MS
    #: Minimum spacing between HotStuff rounds (pacemaker + batch
    #: formation); the source of HotStuff's higher decision latency —
    #: a block needs three successor rounds to commit.
    hotstuff_round_interval: float = 5 * MS
    #: PBFT view change: if set, replicas suspect a silent leader after
    #: this many seconds without progress on outstanding work and elect
    #: the next one.  None (default) runs the fault-free configuration
    #: the paper benchmarks.
    pbft_view_change_timeout: float | None = None
    #: Serial state-machine execution cost per ordered op (OCC check /
    #: apply) — SMR executes on one logical core, unlike Basil's
    #: per-transaction parallelism.  Total cost scales with the op's
    #: read/write-set size (a 35-item TPC-C new-order costs far more to
    #: validate and apply than a 3-item Smallbank op).
    smr_exec_cost: float = 20 * US
    smr_exec_cost_per_item: float = 8 * US

    #: Number of replies a client waits for on reads.  The paper requires
    #: f+1 for Byzantine independence; Fig 5b sweeps {1, f+1, 2f+1}.
    read_quorum: int | None = None  # None -> f + 1
    #: Number of replicas a read request is sent to (paper: 2f+1).
    read_fanout: int | None = None  # None -> 2f + 1

    #: Whether the commit fast path is enabled (Fig 6a sweeps this).
    fast_path_enabled: bool = True

    #: Client-side retry/backoff for aborted transactions.
    retry_backoff_base: float = 2 * MS
    retry_backoff_max: float = 200 * MS

    #: Timeout after which a client considers a dependency stalled and
    #: invokes the fallback (Sec 5).  Kept aggressive: the paper notes
    #: correct clients "quickly notice stalled transactions and
    #: aggressively finish them", which keeps dependency chains short.
    dependency_timeout: float = 5 * MS
    #: Per-view timeout during fallback leader election.
    fallback_view_timeout: float = 40 * MS
    #: Generic client RPC timeout (reads / prepares before re-send).
    request_timeout: float = 50 * MS

    network: NetworkConfig = field(default_factory=NetworkConfig)
    crypto: CryptoConfig = field(default_factory=CryptoConfig)
    node: NodeConfig = field(default_factory=NodeConfig)
    #: Client machines are rarely the bottleneck; 2 cores models a client
    #: process sharing a machine with many others.
    client_node: NodeConfig = field(default_factory=lambda: NodeConfig(cores=2))

    #: Appendix B.5: with vote subsumption (the default, as in the Basil
    #: prototype), a replica counts a signed view v as support for every
    #: v' <= v when adopting fallback views.  Without it (False), only
    #: exact matches count — the mode compatible with multi/threshold
    #: signatures; Lemma 8 / Theorem 6 prove it still makes progress.
    vote_subsumption: bool = True

    #: EXPERIMENT-ONLY (Fig 7 "equiv-forced"): replicas log ST2 decisions
    #: without validating their SHARDVOTES justification, artificially
    #: letting Byzantine clients always equivocate, as the paper does for
    #: its worst-case failure measurement.  Never enable outside that
    #: experiment.
    allow_unjustified_st2: bool = False

    seed: int = 0xBA51

    @property
    def n(self) -> int:
        """Replicas per shard: Basil requires n = 5f + 1 (Sec 4.5)."""
        return 5 * self.f + 1

    @property
    def commit_quorum(self) -> int:
        """CQ = (n + f + 1) / 2 = 3f + 1 commit votes."""
        return 3 * self.f + 1

    @property
    def commit_fast_quorum(self) -> int:
        """Unanimous 5f + 1 commit votes enable the commit fast path."""
        return 5 * self.f + 1

    @property
    def abort_quorum(self) -> int:
        """AQ = f + 1 abort votes let a shard vote abort (slow path)."""
        return self.f + 1

    @property
    def abort_fast_quorum(self) -> int:
        """3f + 1 abort votes make the abort durable without logging."""
        return 3 * self.f + 1

    @property
    def st2_quorum(self) -> int:
        """n - f = 4f + 1 matching ST2R replies make a decision durable."""
        return self.n - self.f

    @property
    def elect_quorum(self) -> int:
        """4f + 1 ELECTFB messages elect a fallback leader."""
        return 4 * self.f + 1

    @property
    def effective_read_quorum(self) -> int:
        return self.read_quorum if self.read_quorum is not None else self.f + 1

    @property
    def effective_read_fanout(self) -> int:
        fanout = self.read_fanout if self.read_fanout is not None else 2 * self.f + 1
        return max(fanout, self.effective_read_quorum)

    def with_overrides(self, **kwargs: Any) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
