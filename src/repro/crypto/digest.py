"""Canonical encoding and content digests for protocol messages.

Digests must be stable across processes and runs (transaction ids are
digests, and the paper's protocol compares them across replicas), so we
define a small canonical byte encoding rather than relying on ``hash()``
or pickle details.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any

#: A digest is a 32-byte SHA-256 value, kept as bytes.
Digest = bytes


def canonical_encode(obj: Any) -> bytes:
    """Encode ``obj`` into canonical bytes.

    Supported: None, bool, int, float, str, bytes, list/tuple, dict
    (sorted by encoded key), frozenset/set (sorted by encoded element),
    and message objects (dataclasses / ``canonical_fields()`` carriers).
    Two equal values always encode identically; different types never
    collide because every atom is tagged.

    Message objects are encoded *by digest* (hash-tree style): a nested
    transaction record or certificate contributes its 32-byte digest,
    which is memoized on the object.  This keeps re-hashing of shared
    protocol structures O(1) — certificates are embedded in thousands of
    read replies — while remaining deterministic across parties, since
    the digest itself is content-derived.  The price is the immutability
    contract: protocol objects must never be mutated after construction
    (they are frozen dataclasses).
    """
    out = bytearray()
    _encode_into(obj, out)
    return bytes(out)


def _encode_into(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, int):
        body = str(obj).encode()
        out += b"i%d:" % len(body)
        out += body
    elif isinstance(obj, float):
        body = repr(obj).encode()
        out += b"f%d:" % len(body)
        out += body
    elif isinstance(obj, str):
        body = obj.encode()
        out += b"s%d:" % len(body)
        out += body
    elif isinstance(obj, bytes):
        out += b"b%d:" % len(obj)
        out += obj
    elif isinstance(obj, (list, tuple)):
        out += b"l%d:" % len(obj)
        for item in obj:
            _encode_into(item, out)
    elif isinstance(obj, dict):
        entries = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in obj.items()
        )
        out += b"d%d:" % len(entries)
        for k, v in entries:
            out += k
            out += v
    elif isinstance(obj, (set, frozenset)):
        entries = sorted(canonical_encode(item) for item in obj)
        out += b"e%d:" % len(entries)
        for entry in entries:
            out += entry
    else:
        # Message-object branch.  Check the digest memo first: shared
        # protocol structures (certificates, votes) are re-encoded
        # constantly, and after the first encode this is one getattr.
        memo = getattr(obj, "_digest_memo", None)
        if memo is not None:
            out += b"h"
            out += memo
        elif hasattr(obj, "canonical_fields") or (
            dataclasses.is_dataclass(obj) and not isinstance(obj, type)
        ):
            out += b"h"
            out += _object_digest(obj)
        else:
            raise TypeError(f"cannot canonically encode {type(obj).__name__}: {obj!r}")


def _object_digest(obj: Any) -> Digest:
    """Memoized content digest of a message object (hash-tree node)."""
    memo = getattr(obj, "_digest_memo", None)
    if memo is not None:
        return memo
    out = bytearray()
    name = type(obj).__name__.encode()
    out += b"c%d:" % len(name)
    out += name
    if hasattr(obj, "canonical_fields"):
        _encode_into(obj.canonical_fields(), out)
    else:
        fields = dataclasses.fields(obj)
        out += b"l%d:" % len(fields)
        for field in fields:
            _encode_into(getattr(obj, field.name), out)
    digest = hashlib.sha256(bytes(out)).digest()
    try:
        object.__setattr__(obj, "_digest_memo", digest)
    except (AttributeError, TypeError):
        pass  # slotted or otherwise unwritable: skip memoization
    return digest


def digest_of(obj: Any) -> Digest:
    """SHA-256 digest of the canonical encoding of ``obj``."""
    memo = getattr(obj, "_digest_memo", None)
    if memo is not None:
        return memo
    if hasattr(obj, "canonical_fields") or (
        dataclasses.is_dataclass(obj) and not isinstance(obj, type)
    ):
        return _object_digest(obj)
    return hashlib.sha256(canonical_encode(obj)).digest()


def digest_bytes(data: bytes) -> Digest:
    """SHA-256 of raw bytes (used by the Merkle tree)."""
    return hashlib.sha256(data).digest()


def short_hex(digest: Digest, length: int = 8) -> str:
    """Human-readable prefix of a digest, for logs and reprs."""
    return digest.hex()[:length]
