"""Structural signatures: unforgeable by construction.

The substitution for ed25519 (see DESIGN.md): a :class:`SigningKey` holds
a secret token drawn from the registry's seeded RNG.  A
:class:`Signature` embeds that token; verification checks the token
against the registry's record for the claimed signer.  Code that does not
hold the :class:`SigningKey` object cannot learn the token, so it cannot
fabricate signatures that verify — exactly the property the paper's
safety proofs rely on.  Byzantine nodes *can* sign arbitrary payloads
with their own key (equivocation), which is also faithful.

Performance costs of signing/verification are charged separately by
:mod:`repro.crypto.cost_model`; this module is pure logic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.crypto.digest import Digest, digest_of
from repro.errors import CryptoError, ForgeryError


@dataclass(frozen=True)
class Signature:
    """A signature over a digest by a named signer.

    Instances should only ever be produced by :meth:`SigningKey.sign`;
    the embedded token is what makes forgery detectable.  The secret
    token is excluded from the canonical encoding (see
    ``canonical_fields``) so digests of signed messages do not leak it.
    """

    signer: str
    digest: Digest
    token: int = field(repr=False)

    def canonical_fields(self) -> tuple:
        return (self.signer, self.digest)  # token is secret material

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Signature by {self.signer} over {self.digest.hex()[:8]}>"


class SigningKey:
    """Private signing capability for one identity. Do not share."""

    __slots__ = ("signer", "_token")

    def __init__(self, signer: str, token: int) -> None:
        self.signer = signer
        self._token = token

    def sign(self, payload: Any) -> Signature:
        """Sign arbitrary payload content (digested canonically)."""
        return self.sign_digest(digest_of(payload))

    def sign_digest(self, digest: Digest) -> Signature:
        return Signature(signer=self.signer, digest=digest, token=self._token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SigningKey {self.signer}>"


@dataclass(frozen=True)
class SignedMessage:
    """A payload together with the signature over its digest."""

    payload: Any
    signature: Signature

    @property
    def signer(self) -> str:
        return self.signature.signer

    def canonical_fields(self) -> tuple:
        return (self.payload, self.signature)


def payload_digest_of(signed: SignedMessage) -> Digest:
    """Digest of a signed message's payload, memoized on the wrapper.

    Payloads are often plain tuples (which cannot carry a digest memo of
    their own), but the immutable ``SignedMessage`` wrapper can: the same
    signed reply is re-verified by every node a certificate crosses, and
    only the first verification pays for the canonical encoding.
    """
    digest = getattr(signed, "_payload_digest", None)
    if digest is None:
        digest = digest_of(signed.payload)
        object.__setattr__(signed, "_payload_digest", digest)
    return digest


class KeyRegistry:
    """The system's PKI: issues keys and verifies signatures.

    Deterministic *and order-independent*: a signer's token is a pure
    function of ``(seed, signer)``, so two registries with the same seed
    agree on every key no matter which identities each has issued, or in
    what order.  Space-parallel runs (:mod:`repro.parallel`) rely on
    this — every partition builds its own registry and pre-issues the
    full topology, and signatures minted in one worker process verify in
    any other.  Token values never enter canonical encodings (they are
    secret material), so the derivation scheme cannot affect schedules
    or trace digests.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._tokens: dict[str, int] = {}

    def issue(self, signer: str) -> SigningKey:
        """Create (or re-derive) the signing key for ``signer``."""
        token = self._tokens.get(signer)
        if token is None:
            token = random.Random(f"keys/{self.seed}/{signer}").getrandbits(128)
            self._tokens[signer] = token
        return SigningKey(signer, token)

    def known(self, signer: str) -> bool:
        return signer in self._tokens

    def verify(self, signed: SignedMessage) -> None:
        """Raise :class:`ForgeryError`/:class:`CryptoError` unless valid."""
        self.verify_digest(signed.signature, payload_digest_of(signed))

    def verify_digest(self, signature: Signature, digest: Digest) -> None:
        expected = self._tokens.get(signature.signer)
        if expected is None:
            raise CryptoError(f"unknown signer {signature.signer!r}")
        if signature.token != expected:
            raise ForgeryError(f"signature does not verify for {signature.signer!r}")
        if signature.digest != digest:
            raise CryptoError("signature covers a different payload")

    def is_valid(self, signed: SignedMessage) -> bool:
        """Boolean-returning variant of :meth:`verify`."""
        try:
            self.verify(signed)
        except CryptoError:
            return False
        return True

    def verify_many(self, pairs: Iterable[tuple[Signature, Digest]]) -> list[bool]:
        """Structurally verify a batch of (signature, digest) pairs.

        Mirrors the ed25519 batch-verification API: one call, per-item
        verdicts.  Unlike real batch verification (which only yields a
        single accept/reject and needs a fallback pass to attribute
        failures), the structural scheme identifies the failing member
        directly, so the returned list is exact.  Cost is charged
        separately by :meth:`repro.crypto.cost_model.CryptoContext.charge_verify_batch`.
        """
        verdicts: list[bool] = []
        for signature, digest in pairs:
            try:
                self.verify_digest(signature, digest)
                verdicts.append(True)
            except CryptoError:
                verdicts.append(False)
        return verdicts
