"""Modeled cryptography.

The paper's hot path is dominated by ed25519 signing/verification; running
real signatures in Python would be ~1000x too slow for faithful closed-loop
benchmarks (the repro gate).  Instead this subpackage provides:

* :mod:`repro.crypto.digest` — canonical encoding + SHA-256 digests of
  protocol messages (real hashing; cheap enough to run for real).
* :mod:`repro.crypto.signatures` — *structural* signatures that are
  unforgeable by construction: producing a valid signature requires the
  holder-only :class:`~repro.crypto.signatures.SigningKey` capability.
* :mod:`repro.crypto.cost_model` — charges simulated CPU time per
  sign/verify/hash so crypto cost shows up in throughput exactly where the
  paper measures it (Figures 5a, 6b).
* :mod:`repro.crypto.merkle` — Merkle trees for reply batching (Sec 4.4).
"""

from repro.crypto.digest import Digest, canonical_encode, digest_of
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.crypto.signatures import KeyRegistry, Signature, SignedMessage, SigningKey
from repro.crypto.cost_model import CryptoContext

__all__ = [
    "CryptoContext",
    "Digest",
    "KeyRegistry",
    "MerkleTree",
    "Signature",
    "SignedMessage",
    "SigningKey",
    "canonical_encode",
    "digest_of",
    "verify_inclusion",
]
