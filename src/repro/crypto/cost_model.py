"""Charging simulated CPU time for cryptographic operations.

A :class:`CryptoContext` binds one node's identity (its signing key), the
system key registry, the crypto cost configuration, and the node's CPU.
Protocol code awaits ``ctx.sign(...)`` / ``ctx.verify(...)``; the context
performs the structural operation *and* occupies a CPU core for the
modeled duration, which is how signature cost turns into the throughput
effects of Figures 5a and 6b.

With ``CryptoConfig.enabled = False`` (the paper's "Basil without
signatures" variant) the structural checks still run — bugs should not
hide behind the no-crypto mode — but no CPU time is charged.
"""

from __future__ import annotations

from typing import Any

from repro.config import CryptoConfig
from repro.crypto.digest import Digest, digest_of
from repro.crypto.signatures import (
    KeyRegistry,
    Signature,
    SignedMessage,
    SigningKey,
    payload_digest_of,
)
from repro.sim.loop import DONE, Future
from repro.sim.node import Cpu


class CryptoContext:
    """One node's view of the crypto layer, with costs charged to its CPU."""

    def __init__(
        self,
        registry: KeyRegistry,
        key: SigningKey,
        config: CryptoConfig,
        cpu: Cpu,
    ) -> None:
        self.registry = registry
        self.key = key
        self.config = config
        self.cpu = cpu
        self.signatures_generated = 0
        self.signatures_verified = 0
        self.hashes_computed = 0
        self.verify_memo_hits = 0
        #: (signer, digest, token) -> verdict.  A signature this node has
        #: already checked is not re-charged (models Basil's verification
        #: cache for certificates that cross a node more than once).  The
        #: token is part of the key so a forgery can never alias a real
        #: signature's verdict.  None when memoization is off.
        self._verify_memo: dict[tuple, bool] | None = (
            {} if (config.enabled and config.verify_memo) else None
        )
        #: Pre-resolved cost of the overwhelmingly common 64-byte hash
        #: charge (cost config is frozen, so this can never go stale).
        self._hash64_cost = config.hash_cost(64)

    @property
    def name(self) -> str:
        return self.key.signer

    # -- signing ----------------------------------------------------------
    async def sign(self, payload: Any) -> SignedMessage:
        """Sign a payload, charging one signature generation."""
        await self.charge_sign()
        # Profiler frames bracket synchronous segments only — never an
        # await — so the frame stack cannot interleave across tasks.
        profiler = self.cpu.sim.profiler
        if profiler.enabled:
            profiler.begin("crypto.sign")
            try:
                signature = self.key.sign(payload)
            finally:
                profiler.end()
        else:
            signature = self.key.sign(payload)
        return SignedMessage(payload=payload, signature=signature)

    async def sign_digest(self, digest: Digest) -> Signature:
        """Sign a precomputed digest (used for Merkle batch roots)."""
        await self.charge_sign()
        profiler = self.cpu.sim.profiler
        if profiler.enabled:
            profiler.begin("crypto.sign")
            try:
                return self.key.sign_digest(digest)
            finally:
                profiler.end()
        return self.key.sign_digest(digest)

    def charge_sign(self) -> Future:
        self.signatures_generated += 1
        if self.config.enabled:
            return self._traced_spend("sign", self.config.sign_cost)
        return DONE

    # -- verification -------------------------------------------------------
    async def verify(self, signed: SignedMessage) -> bool:
        """Verify a signed message, charging one signature verification."""
        return await self.verify_digest(signed.signature, payload_digest_of(signed))

    async def verify_digest(self, signature: Signature, digest: Digest) -> bool:
        memo = self._verify_memo
        if memo is not None:
            key = (signature.signer, digest, signature.token)
            verdict = memo.get(key)
            if verdict is not None:
                self.signatures_verified += 1
                self.verify_memo_hits += 1
                return verdict
        await self.charge_verify()
        profiler = self.cpu.sim.profiler
        if profiler.enabled:
            profiler.begin("crypto.verify")
            try:
                verdict = self._check_digest(signature, digest)
            finally:
                profiler.end()
        else:
            verdict = self._check_digest(signature, digest)
        if memo is not None:
            memo[key] = verdict
        return verdict

    def _check_digest(self, signature: Signature, digest: Digest) -> bool:
        try:
            self.registry.verify_digest(signature, digest)
            return True
        except Exception:  # CryptoError subclasses
            return False

    def probe_verify(self, signature: Signature, digest: Digest) -> bool | None:
        """Memo-only fast path: the cached verdict, or ``None`` on a miss.

        A hit is indistinguishable from :meth:`verify_digest`'s memo-hit
        branch (same counters, no CPU charge, no simulated events), but
        costs the caller no coroutine or await.  Callers fall back to
        ``await verify_digest(...)`` on ``None``.
        """
        memo = self._verify_memo
        if memo is None:
            return None
        verdict = memo.get((signature.signer, digest, signature.token))
        if verdict is not None:
            self.signatures_verified += 1
            self.verify_memo_hits += 1
        return verdict

    def peek_verify(self, signature: Signature, digest: Digest) -> tuple[bool, bool]:
        """Structurally verify without charging CPU time.

        Returns ``(verdict, was_memoized)``.  The caller is responsible
        for charging the non-memoized checks — typically one
        :meth:`charge_verify_batch` for a whole quorum.  Memo hits are
        counted here; fresh checks are counted when charged.
        """
        memo = self._verify_memo
        key = None
        if memo is not None:
            key = (signature.signer, digest, signature.token)
            verdict = memo.get(key)
            if verdict is not None:
                self.signatures_verified += 1
                self.verify_memo_hits += 1
                return verdict, True
        profiler = self.cpu.sim.profiler
        if profiler.enabled:
            profiler.begin("crypto.verify")
            try:
                verdict = self._check_digest(signature, digest)
            finally:
                profiler.end()
        else:
            verdict = self._check_digest(signature, digest)
        if memo is not None:
            memo[key] = verdict
        return verdict, False

    def charge_verify(self) -> Future:
        self.signatures_verified += 1
        if self.config.enabled:
            return self._traced_spend("verify", self.config.verify_cost)
        return DONE

    def charge_verify_batch(self, count: int) -> Future:
        """Charge ``count`` verifications at the batched (ed25519) rate."""
        if count <= 0:
            return DONE
        self.signatures_verified += count
        if self.config.enabled:
            return self._traced_spend("verify", self.config.batch_verify_cost(count))
        return DONE

    # -- request authentication ----------------------------------------------
    async def charge_request_sign(self) -> None:
        """Client-side signature on a state-changing request."""
        if self.config.authenticate_requests:
            await self.charge_sign()

    async def charge_request_verify(self) -> None:
        """Replica-side verification of a client request signature."""
        if self.config.authenticate_requests:
            await self.charge_verify()

    # -- hashing ------------------------------------------------------------
    async def hash(self, payload: Any, size_hint: int | None = None) -> Digest:
        """Digest a payload, charging modeled hash time."""
        profiler = self.cpu.sim.profiler
        if profiler.enabled:
            profiler.begin("crypto.hash")
            try:
                digest = digest_of(payload)
            finally:
                profiler.end()
        else:
            digest = digest_of(payload)
        await self.charge_hash(size_hint if size_hint is not None else 64)
        return digest

    def charge_hash(self, nbytes: int, count: int = 1) -> Future:
        self.hashes_computed += count
        if self.config.enabled:
            cost = (
                self._hash64_cost if nbytes == 64 else self.config.hash_cost(nbytes)
            )
            return self._traced_spend("hash", cost * count)
        return DONE

    def _traced_spend(self, op: str, cost: float):
        """Charge ``cost`` to the CPU, wrapped in a crypto span if tracing.

        Untraced (the common case for benchmarks): returns the CPU charge
        future directly — no coroutine frame.  Traced: a coroutine holding
        a ``with`` span, so cancellation mid-charge still records the
        truncated span, exactly as before.
        """
        sim = self.cpu.sim
        profiler = sim.profiler
        if not sim.tracer.enabled:
            if profiler.enabled:
                # Attribution for the charge plumbing itself; the core
                # occupancy scheduling nests as cpu.spend/heap_push.
                profiler.begin("crypto.charge")
                try:
                    return self.cpu.spend(cost)
                finally:
                    profiler.end()
            return self.cpu.spend(cost)
        return self._traced_spend_span(op, cost)

    async def _traced_spend_span(self, op: str, cost: float) -> None:
        tracer = self.cpu.sim.tracer
        with tracer.span(self.cpu.owner, "crypto", op, cost=cost):
            await self.cpu.spend(cost)
