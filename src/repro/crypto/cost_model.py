"""Charging simulated CPU time for cryptographic operations.

A :class:`CryptoContext` binds one node's identity (its signing key), the
system key registry, the crypto cost configuration, and the node's CPU.
Protocol code awaits ``ctx.sign(...)`` / ``ctx.verify(...)``; the context
performs the structural operation *and* occupies a CPU core for the
modeled duration, which is how signature cost turns into the throughput
effects of Figures 5a and 6b.

With ``CryptoConfig.enabled = False`` (the paper's "Basil without
signatures" variant) the structural checks still run — bugs should not
hide behind the no-crypto mode — but no CPU time is charged.
"""

from __future__ import annotations

from typing import Any

from repro.config import CryptoConfig
from repro.crypto.digest import Digest, digest_of
from repro.crypto.signatures import KeyRegistry, Signature, SignedMessage, SigningKey
from repro.sim.node import Cpu


class CryptoContext:
    """One node's view of the crypto layer, with costs charged to its CPU."""

    def __init__(
        self,
        registry: KeyRegistry,
        key: SigningKey,
        config: CryptoConfig,
        cpu: Cpu,
    ) -> None:
        self.registry = registry
        self.key = key
        self.config = config
        self.cpu = cpu
        self.signatures_generated = 0
        self.signatures_verified = 0
        self.hashes_computed = 0

    @property
    def name(self) -> str:
        return self.key.signer

    # -- signing ----------------------------------------------------------
    async def sign(self, payload: Any) -> SignedMessage:
        """Sign a payload, charging one signature generation."""
        await self.charge_sign()
        return SignedMessage(payload=payload, signature=self.key.sign(payload))

    async def sign_digest(self, digest: Digest) -> Signature:
        """Sign a precomputed digest (used for Merkle batch roots)."""
        await self.charge_sign()
        return self.key.sign_digest(digest)

    async def charge_sign(self) -> None:
        self.signatures_generated += 1
        if self.config.enabled:
            await self._traced_spend("sign", self.config.sign_cost)

    # -- verification -------------------------------------------------------
    async def verify(self, signed: SignedMessage) -> bool:
        """Verify a signed message, charging one signature verification."""
        await self.charge_verify()
        return self.registry.is_valid(signed)

    async def verify_digest(self, signature: Signature, digest: Digest) -> bool:
        await self.charge_verify()
        try:
            self.registry.verify_digest(signature, digest)
        except Exception:  # CryptoError subclasses
            return False
        return True

    async def charge_verify(self) -> None:
        self.signatures_verified += 1
        if self.config.enabled:
            await self._traced_spend("verify", self.config.verify_cost)

    # -- request authentication ----------------------------------------------
    async def charge_request_sign(self) -> None:
        """Client-side signature on a state-changing request."""
        if self.config.authenticate_requests:
            await self.charge_sign()

    async def charge_request_verify(self) -> None:
        """Replica-side verification of a client request signature."""
        if self.config.authenticate_requests:
            await self.charge_verify()

    # -- hashing ------------------------------------------------------------
    async def hash(self, payload: Any, size_hint: int | None = None) -> Digest:
        """Digest a payload, charging modeled hash time."""
        digest = digest_of(payload)
        await self.charge_hash(size_hint if size_hint is not None else 64)
        return digest

    async def charge_hash(self, nbytes: int, count: int = 1) -> None:
        self.hashes_computed += count
        if self.config.enabled:
            await self._traced_spend("hash", self.config.hash_cost(nbytes) * count)

    async def _traced_spend(self, op: str, cost: float) -> None:
        """Charge ``cost`` to the CPU, wrapped in a crypto span if tracing."""
        tracer = self.cpu.sim.tracer
        if tracer.enabled:
            with tracer.span(self.cpu.owner, "crypto", op, cost=cost):
                await self.cpu.spend(cost)
        else:
            await self.cpu.spend(cost)
