"""Merkle trees for reply batching (paper Sec 4.4, Figure 2).

A replica accumulates ``b`` reply digests, builds a Merkle tree, signs the
root once, and ships each client its reply plus the O(log b) sibling path
needed to recompute the root.  Clients verify the path, verify the root
signature once, and cache (root, signature) so later replies from the
same batch skip verification entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.digest import Digest, digest_bytes
from repro.errors import CryptoError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf_hash(leaf: Digest) -> Digest:
    return digest_bytes(_LEAF_PREFIX + leaf)


def _node_hash(left: Digest, right: Digest) -> Digest:
    return digest_bytes(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class InclusionProof:
    """Sibling hashes from a leaf up to the root.

    ``path`` entries are (sibling_digest, sibling_is_left) pairs ordered
    bottom-up.
    """

    index: int
    path: tuple[tuple[Digest, bool], ...]

    def canonical_fields(self) -> tuple:
        return (self.index, self.path)


class MerkleTree:
    """A Merkle tree over a fixed sequence of leaf digests."""

    def __init__(self, leaves: Sequence[Digest]) -> None:
        if not leaves:
            raise CryptoError("Merkle tree needs at least one leaf")
        self.leaves = list(leaves)
        self._levels: list[list[Digest]] = [[_leaf_hash(leaf) for leaf in leaves]]
        while len(self._levels[-1]) > 1:
            prev = self._levels[-1]
            level = []
            for i in range(0, len(prev), 2):
                left = prev[i]
                right = prev[i + 1] if i + 1 < len(prev) else prev[i]
                level.append(_node_hash(left, right))
            self._levels.append(level)

    @property
    def root(self) -> Digest:
        return self._levels[-1][0]

    def __len__(self) -> int:
        return len(self.leaves)

    def proof(self, index: int) -> InclusionProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self.leaves):
            raise CryptoError(f"leaf index {index} out of range")
        path: list[tuple[Digest, bool]] = []
        i = index
        for level in self._levels[:-1]:
            if i % 2 == 0:
                sibling = level[i + 1] if i + 1 < len(level) else level[i]
                path.append((sibling, False))
            else:
                path.append((level[i - 1], True))
            i //= 2
        return InclusionProof(index=index, path=tuple(path))


def verify_inclusion(leaf: Digest, proof: InclusionProof, root: Digest) -> bool:
    """Check that ``leaf`` is included under ``root`` via ``proof``."""
    node = _leaf_hash(leaf)
    for sibling, sibling_is_left in proof.path:
        if sibling_is_left:
            node = _node_hash(sibling, node)
        else:
            node = _node_hash(node, sibling)
    return node == root
