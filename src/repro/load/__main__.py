"""CLI: ``python -m repro.load {sweep,point,list}``.

``sweep`` is the capacity planner: walk offered load over a fresh
system per point, detect the saturation knee, cross-check it against
the closed-loop peak, and probe 2x-knee overload with and without
admission control.  ``point`` runs a single offered-load point for
interactive poking.
"""

from __future__ import annotations

import argparse
import sys

from repro.load.admission import POLICIES
from repro.load.planner import run_point, sweep, write_bench_file, write_report

SYSTEMS = ("basil", "tapir", "txsmr")
PROCESSES = ("poisson", "uniform", "bursty")


def _common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--system", default="basil", choices=SYSTEMS)
    sub.add_argument("--workload", default="ycsb-t", metavar="NAME",
                     help="ycsb-t | ycsb-u | ycsb-z | retwis | smallbank | tpcc")
    sub.add_argument("--process", default="poisson", choices=PROCESSES,
                     help="arrival process shape (default poisson)")
    sub.add_argument("--seed", type=int, default=1)
    sub.add_argument("--duration", type=float, default=0.3, metavar="S",
                     help="measured simulated seconds per point (default 0.3)")
    sub.add_argument("--warmup", type=float, default=0.1, metavar="S")
    sub.add_argument("--keys", type=int, default=2_000,
                     help="workload population (default 2000)")
    sub.add_argument("--proxies", type=int, default=None,
                     help="protocol clients in the proxy pool (default: the "
                          "closed-loop client count for sweep, 40 for point)")
    sub.add_argument("--shards", type=int, default=1)
    sub.add_argument("--obs", nargs="?", const="obs", default=None, metavar="DIR",
                     help="sample telemetry per point and write repro.obs "
                          "RunReport JSONs into DIR (default: obs/)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load",
        description="Open-loop load sweeps and capacity planning.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sw = sub.add_parser("sweep", help="walk offered load, find the knee")
    _common(sw)
    sw.add_argument("--loads", type=float, nargs="+", metavar="TPS",
                    help="explicit offered-load ladder (default: multiples "
                         "of the closed-loop peak)")
    sw.add_argument("--anchor", type=float, metavar="TPS",
                    help="build the default ladder around this throughput "
                         "instead of measuring the closed-loop peak")
    sw.add_argument("--clients", type=int, default=40,
                    help="closed-loop clients for the anchor run (default 40)")
    sw.add_argument("--policy", default="aimd", choices=sorted(POLICIES),
                    help="admission policy for the overload probe (default aimd)")
    sw.add_argument("--quick", action="store_true",
                    help="smoke-test scale (short windows, small population)")
    sw.add_argument("--no-overload", action="store_true",
                    help="skip the 2x-knee overload probes")
    sw.add_argument("--no-closed-loop", action="store_true",
                    help="skip the closed-loop cross-check (needs --anchor "
                         "or --loads)")
    sw.add_argument("--out", metavar="FILE",
                    help="write the sweep report JSON here")
    sw.add_argument("--bench-out", metavar="FILE",
                    help="write a BENCH_*.json extending the current perf "
                         "baseline with the load rows")

    pt = sub.add_parser("point", help="run one offered-load point")
    _common(pt)
    pt.add_argument("rate", type=float, help="offered load, tx/s")
    pt.add_argument("--policy", default="none", choices=sorted(POLICIES))

    sub.add_parser("list", help="show systems, workloads, and policies")

    args = parser.parse_args(argv)

    if args.command == "list":
        from repro.workloads import WORKLOADS

        print("systems:  " + " ".join(SYSTEMS))
        print("workloads: " + " ".join(sorted([*WORKLOADS, "tpcc"])))
        print("processes: " + " ".join(PROCESSES))
        print("policies:  " + " ".join(sorted(POLICIES)))
        return 0

    if args.command == "point":
        point = run_point(
            args.system, args.workload, args.rate,
            seed=args.seed, process=args.process, policy=args.policy,
            duration=args.duration, warmup=args.warmup, keys=args.keys,
            proxies=args.proxies if args.proxies is not None else 40,
            num_shards=args.shards,
            obs_dir=args.obs,
        )
        print(point.row())
        return 0

    duration, warmup, keys = args.duration, args.warmup, args.keys
    if args.quick:
        duration, warmup, keys = min(duration, 0.08), min(warmup, 0.02), min(keys, 500)
    if args.no_closed_loop and args.anchor is None and args.loads is None:
        parser.error("--no-closed-loop needs --anchor or --loads")
    report = sweep(
        args.system,
        args.workload,
        seed=args.seed,
        process=args.process,
        loads=args.loads,
        anchor=args.anchor,
        clients=args.clients,
        duration=duration,
        warmup=warmup,
        keys=keys,
        proxies=args.proxies,
        num_shards=args.shards,
        with_closed_loop=not args.no_closed_loop,
        with_overload=not args.no_overload,
        overload_policy=args.policy,
        obs_dir=args.obs,
    )
    if args.out:
        write_report(args.out, report)
        print(f"report -> {args.out}")
    if args.bench_out:
        benches = write_bench_file(args.bench_out, report)
        print(f"bench file -> {args.bench_out} ({len(benches)} entries)")
    if report.cross_check_ok is False:
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... list | head`
        sys.exit(0)
