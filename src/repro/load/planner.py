"""Capacity planning: offered-load sweeps and knee detection.

The planner answers the operator's question — *how much load can this
deployment take, and what happens past that?* — by walking offered load
through a fresh system per point (open loop, no admission control),
detecting the saturation knee from the measured curve, and probing
overload behaviour at 2x the knee with and without admission control.

The knee is cross-checked against the closed-loop peak the bench
harness measures (Fig 4a's best point): both methodologies bound the
same capacity, so they must agree to within a configurable tolerance or
the sweep flags itself.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.config import AdmissionConfig, ArrivalConfig
from repro.load.generator import OpenLoopGenerator
from repro.workloads import make_workload

#: Knee heuristics: saturated when one more unit of offered load yields
#: less than this much goodput...
SLOPE_THRESHOLD = 0.5
#: ...or when p99 jumps by more than this factor between adjacent points.
P99_INFLECTION = 3.0
#: Max |knee - closed-loop peak| / peak before the cross-check complains.
CROSS_CHECK_TOLERANCE = 0.15


@dataclass
class SweepPoint:
    """One (offered load -> measured behaviour) sample."""

    offered: float  # configured arrival rate (tx/s)
    offered_tps: float  # measured arrivals/s inside the window
    goodput_tps: float  # committed tx/s
    mean_latency: float
    p99_latency: float
    commit_rate: float
    shed: int
    gave_up: int
    policy: str = "none"

    def row(self) -> str:
        return (
            f"offered {self.offered:>9.0f}  goodput {self.goodput_tps:>9.1f} tx/s  "
            f"lat {self.mean_latency * 1000:7.2f} ms  p99 {self.p99_latency * 1000:8.2f} ms  "
            f"commit {self.commit_rate * 100:5.1f}%  shed {self.shed:<5} "
            f"[{self.policy}]"
        )


@dataclass
class SweepReport:
    """Everything one ``repro.load sweep`` run learned."""

    system: str
    workload: str
    seed: int
    process: str
    points: list[SweepPoint]
    knee_offered: float
    knee_goodput: float
    closed_loop_peak: float | None = None
    #: |knee_goodput - closed_loop_peak| / closed_loop_peak.
    cross_check_error: float | None = None
    cross_check_ok: bool | None = None
    overload: list[SweepPoint] = field(default_factory=list)
    wall_s: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.load.sweep/v1",
            "system": self.system,
            "workload": self.workload,
            "seed": self.seed,
            "process": self.process,
            "points": [asdict(p) for p in self.points],
            "knee": {"offered": self.knee_offered, "goodput": self.knee_goodput},
            "closed_loop_peak": self.closed_loop_peak,
            "cross_check": {
                "error": self.cross_check_error,
                "ok": self.cross_check_ok,
                "tolerance": CROSS_CHECK_TOLERANCE,
            },
            "overload": [asdict(p) for p in self.overload],
            "wall_s": self.wall_s,
        }


# ---------------------------------------------------------------------------
# Knee detection
# ---------------------------------------------------------------------------
def detect_knee(
    points: list[SweepPoint],
    slope_threshold: float = SLOPE_THRESHOLD,
    p99_inflection: float = P99_INFLECTION,
) -> SweepPoint:
    """The last point before the curve saturates.

    Walking points sorted by offered load, the system is saturated at
    the first point where any of:

    * marginal goodput per unit of offered load drops below
      ``slope_threshold`` (the curve flattens),
    * p99 latency jumps by more than ``p99_inflection`` x the previous
      point (the queue is unbounded),
    * goodput *declines* (congestion collapse has begun).

    The knee is the point *at* a flattening (goodput still rising, just
    sub-linearly — that is the top of the curve) but the point *before*
    a decline or a p99 blow-up (the system is already past capacity
    there).  If nothing saturates, the knee is the highest-goodput
    point — the sweep simply didn't reach capacity, and callers should
    extend the ladder.
    """
    if not points:
        raise ValueError("cannot detect a knee with no sweep points")
    points = sorted(points, key=lambda p: p.offered)
    for i in range(1, len(points)):
        prev, cur = points[i - 1], points[i]
        d_offered = cur.offered - prev.offered
        if d_offered <= 0:
            continue
        inflected = (
            prev.p99_latency > 0 and cur.p99_latency > p99_inflection * prev.p99_latency
        )
        if cur.goodput_tps < prev.goodput_tps or inflected:
            return prev
        if (cur.goodput_tps - prev.goodput_tps) / d_offered < slope_threshold:
            return cur
    return max(points, key=lambda p: p.goodput_tps)


# ---------------------------------------------------------------------------
# Point execution
# ---------------------------------------------------------------------------
def run_point(
    system_kind: str,
    workload_name: str,
    rate: float,
    *,
    seed: int = 1,
    process: str = "poisson",
    policy: str = "none",
    duration: float = 0.3,
    warmup: float = 0.1,
    keys: int = 2_000,
    proxies: int = 40,
    num_shards: int = 1,
    admission: AdmissionConfig | None = None,
    tracer: Any = None,
    obs_dir: str | None = None,
) -> SweepPoint:
    """Run one offered-load point against a *fresh* system."""
    from repro.faults.campaign import build_system, make_config

    config = make_config(seed)
    if num_shards != 1:
        config = config.with_overrides(num_shards=num_shards)
    system = build_system(system_kind, config)
    workload = make_workload(workload_name, keys=keys)
    if admission is None:
        admission = AdmissionConfig(policy=policy)
    recorder = None
    if obs_dir is not None:
        from repro.obs import ObsRecorder

        recorder = ObsRecorder()
    gen = OpenLoopGenerator(
        system,
        workload,
        ArrivalConfig(process=process, rate=rate),
        admission=admission,
        duration=duration,
        warmup=warmup,
        proxies=proxies,
        tracer=tracer,
        recorder=recorder,
    )
    result = gen.run()
    if recorder is not None:
        import os

        from repro.obs import write_report as write_obs_report

        name = f"load-{system_kind}-{workload_name}-{rate:.0f}-{admission.policy}"
        obs = recorder.finish(name, config=config, bench=result)
        os.makedirs(obs_dir, exist_ok=True)
        write_obs_report(os.path.join(obs_dir, name + ".obs.json"), obs)
    return SweepPoint(
        offered=rate,
        offered_tps=result.offered_tps,
        goodput_tps=result.goodput_tps,
        mean_latency=result.mean_latency,
        p99_latency=result.p99_latency,
        commit_rate=result.commit_rate,
        shed=result.shed_count,
        gave_up=result.extra.get("gave_up", 0),
        policy=admission.policy,
    )


def closed_loop_peak(
    system_kind: str,
    workload_name: str,
    *,
    seed: int = 1,
    clients: int = 40,
    duration: float = 0.3,
    warmup: float = 0.1,
    keys: int = 2_000,
    num_shards: int = 1,
) -> float:
    """Peak closed-loop throughput — the Fig 4a-style anchor.

    Figure 4a's "peak" is the best point on the throughput-vs-clients
    curve, not one arbitrary client count: too few clients under-drive
    the system, too many collapse it with contention aborts.  So this
    walks a small client ladder around ``clients`` and keeps the max —
    the capacity bound the open-loop knee must land near.
    """
    from repro.bench.runner import ExperimentRunner
    from repro.faults.campaign import build_system, make_config

    best = 0.0
    for count in sorted({max(2, clients // 2), clients, clients * 2}):
        config = make_config(seed)
        if num_shards != 1:
            config = config.with_overrides(num_shards=num_shards)
        system = build_system(system_kind, config)
        workload = make_workload(workload_name, keys=keys)
        runner = ExperimentRunner(
            system,
            workload,
            num_clients=count,
            duration=duration,
            warmup=warmup,
            name=f"closed-{system_kind}-{workload_name}-{count}",
        )
        best = max(best, runner.run().throughput)
    return best


#: Offered-load ladder as multiples of the anchor throughput: below the
#: knee, around it, and past it.
DEFAULT_LADDER = (0.4, 0.6, 0.8, 1.0, 1.2, 1.5)


def sweep(
    system_kind: str = "basil",
    workload_name: str = "ycsb-t",
    *,
    seed: int = 1,
    process: str = "poisson",
    loads: list[float] | None = None,
    anchor: float | None = None,
    clients: int = 40,
    duration: float = 0.3,
    warmup: float = 0.1,
    keys: int = 2_000,
    proxies: int | None = None,
    num_shards: int = 1,
    with_closed_loop: bool = True,
    with_overload: bool = True,
    overload_policy: str = "aimd",
    obs_dir: str | None = None,
    verbose: bool = True,
) -> SweepReport:
    """Walk offered load, find the knee, probe 2x-knee overload.

    ``proxies`` defaults to the closed-loop client count: the proxy pool
    must match the concurrency the anchor run had, or the pool's own
    2-core client nodes (Fig 5c: clients do real crypto) become the
    bottleneck and the knee under-reads.
    """
    t0 = time.perf_counter()
    if proxies is None:
        proxies = clients
    say = print if verbose else (lambda *a, **k: None)

    peak: float | None = None
    if with_closed_loop or (anchor is None and loads is None):
        peak = closed_loop_peak(
            system_kind, workload_name, seed=seed, clients=clients,
            duration=duration, warmup=warmup, keys=keys, num_shards=num_shards,
        )
        say(f"closed-loop peak: {peak:.0f} tx/s")
    base = anchor if anchor is not None else peak
    if loads is None:
        loads = [round(base * m) for m in DEFAULT_LADDER]

    points: list[SweepPoint] = []
    for rate in loads:
        point = run_point(
            system_kind, workload_name, rate, seed=seed, process=process,
            duration=duration, warmup=warmup, keys=keys, proxies=proxies,
            num_shards=num_shards, obs_dir=obs_dir,
        )
        points.append(point)
        say(point.row())

    knee = detect_knee(points)
    say(f"knee: offered {knee.offered:.0f} tx/s, goodput {knee.goodput_tps:.0f} tx/s")

    report = SweepReport(
        system=system_kind,
        workload=workload_name,
        seed=seed,
        process=process,
        points=sorted(points, key=lambda p: p.offered),
        knee_offered=knee.offered,
        knee_goodput=knee.goodput_tps,
        closed_loop_peak=peak,
    )
    if peak is not None and peak > 0:
        report.cross_check_error = abs(knee.goodput_tps - peak) / peak
        report.cross_check_ok = report.cross_check_error <= CROSS_CHECK_TOLERANCE
        say(
            f"cross-check vs closed loop: {report.cross_check_error * 100:.1f}% "
            f"({'ok' if report.cross_check_ok else 'MISMATCH'})"
        )

    if with_overload:
        overload_rate = 2.0 * knee.offered
        for pol in ("none", overload_policy):
            point = run_point(
                system_kind, workload_name, overload_rate, seed=seed,
                process=process, policy=pol, duration=duration, warmup=warmup,
                keys=keys, proxies=proxies, num_shards=num_shards,
                obs_dir=obs_dir,
            )
            report.overload.append(point)
            say(point.row())

    report.wall_s = time.perf_counter() - t0
    return report


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------
def write_report(path: str, report: SweepReport) -> None:
    with open(path, "w") as fh:
        json.dump(report.to_dict(), fh, indent=2)
        fh.write("\n")


def to_bench_entries(report: SweepReport) -> list[dict[str, Any]]:
    """BENCH_*.json rows for the perf gate: knee goodput + overload goodput."""
    prefix = f"load-{report.system}-{report.workload}"
    entries = [
        {
            "bench": f"{prefix}-knee",
            "wall_s": report.wall_s,
            "events_per_s": 0.0,
            "sim_tput": report.knee_goodput,
        }
    ]
    for point in report.overload:
        entries.append(
            {
                "bench": f"{prefix}-2x-{point.policy}",
                "wall_s": report.wall_s,
                "events_per_s": 0.0,
                "sim_tput": point.goodput_tps,
            }
        )
    return entries


def write_bench_file(path: str, report: SweepReport, root: str = ".") -> list[str]:
    """Write a ``BENCH_*.json`` that *extends* the current perf baseline.

    ``find_baseline`` picks the newest ``BENCH_*.json`` by PR number, so
    a file containing only load rows would shadow the kernel baselines
    and silently disable the perf gate.  Merge: keep every entry of the
    newest existing baseline verbatim, then append/replace the load rows.
    """
    from repro.perf.compare import find_baseline

    merged: dict[str, dict[str, Any]] = {}
    baseline = find_baseline(root)
    if baseline is not None:
        with open(baseline) as fh:
            for entry in json.load(fh):
                merged[entry["bench"]] = entry
    for entry in to_bench_entries(report):
        merged[entry["bench"]] = entry
    with open(path, "w") as fh:
        json.dump(list(merged.values()), fh, indent=2)
        fh.write("\n")
    return sorted(merged)
