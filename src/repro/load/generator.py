"""The open-loop load generator.

Drives one system with arrivals from an :class:`~repro.load.arrivals`
process instead of the bench harness's closed-loop clients.  Arrivals
are independent of completions: when the system saturates, work piles up
(or is shed by the admission policy) instead of silently throttling the
offered rate, which is what lets :mod:`repro.load.planner` map the
latency–throughput curve past the knee.

Structure: one *driver* task samples inter-arrival gaps from the
dedicated ``"load"`` RNG stream; each admitted arrival becomes its own
simulator task running the usual session/retry loop against a pool of
``proxies`` protocol clients (round-robin).  Clients issue monotonic
begin timestamps, so concurrent sessions on one proxy are safe.

Determinism: all generator randomness lives on the ``"load"``,
``"load-workload"``, and ``"load-backoff"`` streams — protocol streams
are untouched, so a run with the generator disabled is byte-identical
to one where :mod:`repro.load` was never imported (pinned by
``tests/load/test_determinism.py``).
"""

from __future__ import annotations

from typing import Any

from repro.config import AdmissionConfig, ArrivalConfig
from repro.errors import ProtocolError
from repro.load.admission import ADMIT, DELAY, SHED, AdmissionPolicy, make_policy
from repro.load.arrivals import ArrivalProcess, from_config
from repro.sim.monitor import MeasurementWindow, Monitor


class OpenLoopGenerator:
    """Open-loop counterpart of :class:`repro.bench.runner.ExperimentRunner`.

    ``system`` must expose ``sim``, ``replicas``, ``create_client()`` and
    ``new_session(client)`` (Basil, TAPIR, and TxSMR all do).  Latency is
    measured from *arrival* to commit, so admission-delay and queueing
    time count — the client-visible number an overloaded service shows.
    """

    def __init__(
        self,
        system: Any,
        workload: Any,
        arrivals: ArrivalProcess | ArrivalConfig,
        admission: AdmissionPolicy | AdmissionConfig | None = None,
        duration: float = 1.0,
        warmup: float = 0.25,
        proxies: int = 8,
        max_retries: int = 50,
        backoff_base: float = 0.002,
        backoff_max: float = 0.05,
        name: str = "",
        tracer: Any = None,
        injector: Any = None,
        recorder: Any = None,
    ) -> None:
        self.system = system
        self.workload = workload
        self.arrivals = (
            from_config(arrivals) if isinstance(arrivals, ArrivalConfig) else arrivals
        )
        if admission is None:
            admission = AdmissionConfig()
        self.policy = (
            make_policy(admission) if isinstance(admission, AdmissionConfig) else admission
        )
        self.duration = duration
        self.warmup = warmup
        self.proxies = proxies
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.name = name or f"{getattr(workload, 'name', 'load')}@{self.arrivals.rate:.0f}"
        self.tracer = tracer
        self.injector = injector
        #: Optional repro.obs.ObsRecorder; attached at run() so open-loop
        #: runs sample the same telemetry as closed-loop benchmarks.
        self.recorder = recorder
        self.monitor = Monitor(
            window=MeasurementWindow(start=warmup, end=warmup + duration)
        )
        #: Admitted-but-unfinished transactions (the policy's input).
        self.in_flight = 0

    # ------------------------------------------------------------------
    def run(self) -> "BenchResult":
        from repro.bench.runner import BenchResult

        sim = self.system.sim
        if self.tracer is not None:
            sim.attach_tracer(self.tracer)
        if self.injector is not None:
            self.injector.attach(self.system)
        self.system.load(self.workload.load_data())
        self._clients = [self.system.create_client() for _ in range(self.proxies)]
        self._next_proxy = 0
        self._tasks: list[Any] = []
        end_time = self.warmup + self.duration + self.warmup  # + cool-down
        self._end_time = end_time
        if self.recorder is not None:
            self.recorder.attach(self.system, until=end_time)
        driver = sim.create_task(self._drive(end_time), name="load-driver")
        sim.run(until=end_time)
        driver.cancel()
        for task in self._tasks:
            task.cancel()
        return self._result(BenchResult)

    # ------------------------------------------------------------------
    async def _drive(self, end_time: float) -> None:
        sim = self.system.sim
        rng = sim.rng("load")
        while True:
            gap = self.arrivals.next_interarrival(rng, sim.now)
            await sim.sleep(gap)
            if sim.now >= end_time:
                return
            self._arrival(sim.now)

    def _arrival(self, arrived: float) -> None:
        sim = self.system.sim
        self.monitor.record_offered(arrived)
        task = self.workload.next_transaction(sim.rng("load-workload"))
        decision = self.policy.decide(arrived, self.in_flight, self.system)
        if decision == ADMIT:
            self._admit(task, arrived)
        elif decision == DELAY:
            self._tasks.append(
                sim.create_task(self._parked(task, arrived), name="load-parked")
            )
        else:
            self._shed(arrived)

    def _shed(self, now: float) -> None:
        self.monitor.record_shed(now)
        sim = self.system.sim
        if sim.metrics.enabled:
            sim.metrics.counter("admission_shed_total").add()
        if sim.tracer.enabled:
            sim.tracer.instant("load-gen", "load", "shed", in_flight=self.in_flight)

    async def _parked(self, task: Any, arrived: float) -> None:
        """Delay-mode parking: re-check until a slot frees or we time out."""
        sim = self.system.sim
        config = self.policy.config
        while True:
            await sim.sleep(config.retry_delay)
            if sim.now - arrived > config.max_queue_delay:
                self._shed(sim.now)
                return
            decision = self.policy.decide(sim.now, self.in_flight, self.system)
            if decision == ADMIT:
                if sim.tracer.enabled:
                    sim.tracer.complete(
                        "load-gen", "load", "queued", arrived, sim.now
                    )
                self._admit(task, arrived)
                return
            if decision == SHED:
                self._shed(sim.now)
                return

    def _admit(self, task: Any, arrived: float) -> None:
        sim = self.system.sim
        self.monitor.record_admitted(sim.now)
        if sim.metrics.enabled:
            sim.metrics.counter("admission_admitted_total").add()
        self.policy.on_admit(sim.now)
        self.in_flight += 1
        client = self._clients[self._next_proxy]
        self._next_proxy = (self._next_proxy + 1) % len(self._clients)
        self._tasks.append(
            sim.create_task(self._execute(client, task, arrived), name="load-txn")
        )

    async def _execute(self, client: Any, task: Any, arrived: float) -> None:
        sim = self.system.sim
        monitor = self.monitor
        rng = sim.rng("load-backoff")
        started = sim.now
        committed = False
        try:
            retries = 0
            while True:
                session = self.system.new_session(client)
                try:
                    await task.body(session)
                    result = await session.commit()
                except ProtocolError:
                    monitor.record_event(sim.now, "protocol_errors")
                    break
                if result.committed:
                    committed = True
                    monitor.record_commit(
                        sim.now, sim.now - arrived, result.fast_path, tag="open"
                    )
                    break
                monitor.record_abort(sim.now, tag="open")
                retries += 1
                if retries > self.max_retries or sim.now >= self._end_time:
                    monitor.record_event(sim.now, "gave_up")
                    break
                backoff = min(self.backoff_max, self.backoff_base * (2 ** (retries - 1)))
                await sim.sleep(rng.uniform(0, backoff))
        finally:
            self.in_flight -= 1
            self.policy.on_done(sim.now, committed)
            tracer = sim.tracer
            if tracer.enabled:
                tracer.complete(
                    "load-gen", "load", "inflight", started, sim.now,
                    committed=committed, wait=started - arrived,
                )

    # ------------------------------------------------------------------
    def _result(self, result_cls) -> "BenchResult":
        monitor = self.monitor
        return result_cls(
            name=self.name,
            throughput=monitor.throughput(),
            mean_latency=monitor.mean_latency(),
            p99_latency=monitor.p99_latency(),
            commit_rate=monitor.commit_rate(),
            fast_path_rate=monitor.fast_path_rate(),
            commits=monitor.counter("commits").value,
            aborts=monitor.counter("aborts").value,
            duration=self.duration,
            dropped=getattr(getattr(self.system, "network", None), "messages_dropped", 0),
            offered_tps=monitor.offered_tps(),
            goodput_tps=monitor.goodput_tps(),
            shed_count=monitor.shed_count(),
            extra={
                "admitted": monitor.counter("admitted").value,
                "policy": self.policy.name,
                "policy_stats": dict(self.policy.stats),
                "arrival_rate": self.arrivals.rate,
                "gave_up": monitor.counter("gave_up").value,
                "protocol_errors": monitor.counter("protocol_errors").value,
            },
        )
