"""Open-loop load generation, admission control, and capacity planning.

The bench harness (:mod:`repro.bench`) drives *closed-loop* clients:
each waits for its transaction to finish before issuing the next, so
offered load self-limits at capacity and the latency–throughput curve
stops at the knee.  This package supplies the other half of the
methodology:

* :mod:`repro.load.arrivals` — Poisson / uniform / bursty (on-off MMPP)
  arrival processes on a dedicated ``"load"`` RNG stream.
* :mod:`repro.load.admission` — client-proxy admission control (static
  cap, AIMD shedding) driven by replica
  :class:`~repro.sim.node.LoadSignal` readings.
* :mod:`repro.load.generator` — the open-loop generator itself.
* :mod:`repro.load.planner` — offered-load sweeps, knee detection, and
  overload probes (``python -m repro.load sweep``).

Determinism contract: with the load subsystem unconfigured, protocol
RNG streams and trace digests are byte-identical to a tree where this
package does not exist (``tests/load/test_determinism.py``).
"""

from repro.load.admission import (
    AdditiveIncreaseShedding,
    AdmissionPolicy,
    NoAdmission,
    StaticCapPolicy,
    make_policy,
)
from repro.load.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
    from_config,
)
from repro.load.generator import OpenLoopGenerator
from repro.load.planner import SweepPoint, SweepReport, detect_knee, run_point, sweep

__all__ = [
    "AdditiveIncreaseShedding",
    "AdmissionPolicy",
    "ArrivalProcess",
    "BurstyArrivals",
    "NoAdmission",
    "OpenLoopGenerator",
    "PoissonArrivals",
    "StaticCapPolicy",
    "SweepPoint",
    "SweepReport",
    "UniformArrivals",
    "detect_knee",
    "from_config",
    "make_policy",
    "run_point",
    "sweep",
]
