"""Open-loop arrival processes.

A closed loop (``repro.bench``) can never push a system past saturation:
every in-flight transaction throttles the next one, so offered load
self-limits at capacity.  These processes decouple arrival times from
completion times — transactions arrive on a configured schedule whether
or not earlier ones finished — which is the only way to measure the
latency–throughput knee and what happens beyond it.

Determinism contract (mirrors ``repro.faults``): every sample is drawn
from the dedicated ``"load"`` RNG stream the generator passes in, so an
unconfigured load subsystem leaves protocol RNG streams — and therefore
trace digests — byte-identical.
"""

from __future__ import annotations

import random

from repro.config import ArrivalConfig


class ArrivalProcess:
    """Base class: a stateful source of inter-arrival gaps.

    ``next_interarrival(rng, now)`` returns the simulated seconds until
    the next arrival.  Implementations must draw randomness only from
    ``rng`` and keep any modulation state internal, so one process
    instance replays identically under the same seed.
    """

    #: Mean offered rate (txns per simulated second), for reports.
    rate: float

    def next_interarrival(self, rng: random.Random, now: float) -> float:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals — exponential gaps with mean ``1/rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        self.rate = rate

    def next_interarrival(self, rng: random.Random, now: float) -> float:
        return rng.expovariate(self.rate)


class UniformArrivals(ArrivalProcess):
    """Paced arrivals: gaps uniform in ``(1 ± spread) / rate``.

    ``spread=0`` is a perfect comb (constant spacing), the lowest-variance
    offered load a rate can have — useful to separate queueing caused by
    arrival burstiness from queueing caused by service-time variance.
    """

    def __init__(self, rate: float, spread: float = 0.5) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= spread < 1.0:
            raise ValueError("spread must be in [0, 1)")
        self.rate = rate
        self.spread = spread

    def next_interarrival(self, rng: random.Random, now: float) -> float:
        mean = 1.0 / self.rate
        if self.spread == 0.0:
            return mean
        return rng.uniform(mean * (1.0 - self.spread), mean * (1.0 + self.spread))


class BurstyArrivals(ArrivalProcess):
    """Two-state on/off MMPP (Markov-modulated Poisson process).

    The modulating chain alternates between an ON state offering
    ``peak_ratio * rate`` and an OFF state offering whatever keeps the
    long-run mean at ``rate``::

        off_rate = rate * (1 - peak_ratio * on_fraction) / (1 - on_fraction)

    State dwells are exponential with means ``cycle * on_fraction`` and
    ``cycle * (1 - on_fraction)``, so the time-average ON fraction is
    ``on_fraction`` and one ON+OFF cycle averages ``cycle`` seconds.
    Bursts stress admission control the way diurnal or flash-crowd
    traffic does: the same mean load, concentrated.
    """

    def __init__(
        self,
        rate: float,
        peak_ratio: float = 3.0,
        on_fraction: float = 0.3,
        cycle: float = 0.02,
    ) -> None:
        if rate <= 0:
            raise ValueError("arrival rate must be positive")
        if peak_ratio <= 1.0:
            raise ValueError("peak_ratio must exceed 1")
        if not 0.0 < on_fraction < 1.0:
            raise ValueError("on_fraction must be in (0, 1)")
        if peak_ratio * on_fraction > 1.0:
            raise ValueError(
                "peak_ratio * on_fraction must be <= 1 (OFF rate would be negative)"
            )
        if cycle <= 0:
            raise ValueError("cycle must be positive")
        self.rate = rate
        self.on_rate = rate * peak_ratio
        self.off_rate = rate * (1.0 - peak_ratio * on_fraction) / (1.0 - on_fraction)
        self.mean_on_dwell = cycle * on_fraction
        self.mean_off_dwell = cycle * (1.0 - on_fraction)
        #: Modulation state: current phase and when it ends.  Dwell ends
        #: are sampled lazily from the same rng as the gaps, so replay is
        #: a pure function of the seed.
        self._on = False
        self._until = 0.0

    def _phase_rate(self, rng: random.Random, now: float) -> float:
        while now >= self._until:
            self._on = not self._on
            mean = self.mean_on_dwell if self._on else self.mean_off_dwell
            self._until = max(now, self._until) + rng.expovariate(1.0 / mean)
        return self.on_rate if self._on else self.off_rate

    def next_interarrival(self, rng: random.Random, now: float) -> float:
        # Exact MMPP sampling: draw at the current phase's rate, and if
        # the candidate lands past the phase boundary, jump to the
        # boundary and re-draw at the new rate — valid because the
        # exponential is memoryless.  (Drawing once and keeping a gap
        # that straddles the boundary would bias arrivals toward the
        # phase the gap *started* in.)  A zero-rate OFF state simply
        # skips to its boundary.
        t = now
        while True:
            rate = self._phase_rate(rng, t)
            if rate > 0.0:
                gap = rng.expovariate(rate)
                if t + gap <= self._until:
                    return (t + gap) - now
            t = self._until


def from_config(config: ArrivalConfig) -> ArrivalProcess:
    """Build the configured arrival process."""
    if config.process == "poisson":
        return PoissonArrivals(config.rate)
    if config.process == "uniform":
        return UniformArrivals(config.rate, spread=config.spread)
    if config.process == "bursty":
        return BurstyArrivals(
            config.rate,
            peak_ratio=config.peak_ratio,
            on_fraction=config.on_fraction,
            cycle=config.cycle,
        )
    raise ValueError(f"unknown arrival process {config.process!r}")
