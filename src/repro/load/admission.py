"""Client-proxy admission control.

When offered load exceeds capacity, an open-loop system does not degrade
gracefully on its own: replica queues grow without bound, timeouts fire,
clients rebroadcast, and the retry traffic itself consumes the capacity
that remains (goodput collapse).  Admission control sheds or delays
arrivals *at the client proxy*, before they cost the replicas anything,
trading rejected requests for bounded latency on the admitted ones.

Policies are pure decision functions over local proxy state plus
:class:`repro.sim.node.LoadSignal` snapshots read from the replicas via
``system.replicas`` — sampling is lazy (on arrivals, rate-limited by
``sample_interval``), so no policy ever schedules simulator events and
the determinism contract of :mod:`repro.load.arrivals` holds end to end.
"""

from __future__ import annotations

from repro.config import AdmissionConfig

#: Decision verbs returned by :meth:`AdmissionPolicy.decide`.
ADMIT = "admit"
SHED = "shed"
DELAY = "delay"


class AdmissionPolicy:
    """Base class; also the policy-facing view of proxy state.

    The generator calls :meth:`decide` once per arrival (and again per
    re-check for parked arrivals) with the number of transactions it has
    admitted but not yet finished.  ``on_admit``/``on_done`` bracket each
    admitted transaction so adaptive policies can meter completions.
    """

    name = "none"

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.stats: dict[str, int] = {"admitted": 0, "shed": 0, "delayed": 0}
        #: Smallest in-flight count at which this policy ever shed — the
        #: invariant tests pin that it never drops below the static cap.
        self.min_in_flight_at_shed: int | None = None

    def decide(self, now: float, in_flight: int, system) -> str:
        return ADMIT

    def on_admit(self, now: float) -> None:
        self.stats["admitted"] += 1

    def on_done(self, now: float, committed: bool) -> None:
        pass

    # -- bookkeeping shared by subclasses -------------------------------
    def _record_shed(self, in_flight: int) -> None:
        self.stats["shed"] += 1
        if (
            self.min_in_flight_at_shed is None
            or in_flight < self.min_in_flight_at_shed
        ):
            self.min_in_flight_at_shed = in_flight

    def current_cap(self) -> float | None:
        """The in-flight limit being enforced right now (None = unlimited)."""
        return None


class NoAdmission(AdmissionPolicy):
    """Admit everything — the pure open loop (and the collapse baseline)."""

    name = "none"


class StaticCapPolicy(AdmissionPolicy):
    """At most ``cap`` transactions in flight across the proxy pool.

    Over-cap arrivals are shed immediately (``mode="shed"``) or parked
    and re-checked every ``retry_delay`` until a slot frees or
    ``max_queue_delay`` expires (``mode="delay"`` — the generator owns
    the parking clock and calls :meth:`decide` again per re-check).
    """

    name = "static-cap"

    def __init__(self, config: AdmissionConfig) -> None:
        super().__init__(config)
        if config.cap < 1:
            raise ValueError("static cap must be at least 1")
        if config.mode not in ("shed", "delay"):
            raise ValueError(f"unknown static-cap mode {config.mode!r}")

    def decide(self, now: float, in_flight: int, system) -> str:
        if in_flight < self.config.cap:
            return ADMIT
        if self.config.mode == "delay":
            self.stats["delayed"] += 1
            return DELAY
        self._record_shed(in_flight)
        return SHED

    def current_cap(self) -> float | None:
        return float(self.config.cap)


class AdditiveIncreaseShedding(AdmissionPolicy):
    """AIMD in-flight cap driven by replica load signals.

    The cap grows by ``additive_increase`` per healthy ``sample_interval``
    (probing for capacity) and halves — multiplicative decrease by
    ``decrease_factor`` — whenever the busiest replica's backlog per core
    exceeds ``queue_high_water`` or its windowed utilization exceeds
    ``target_utilization``.  This is TCP's congestion-control shape
    applied to transaction admission: it converges near the knee without
    knowing the knee in advance, and backs off before replica queues (and
    therefore p99) run away.
    """

    name = "aimd"

    def __init__(self, config: AdmissionConfig) -> None:
        super().__init__(config)
        self.cap = config.initial_cap
        self._last_sample = None  # (time, max busy_time) of previous reading
        self.stats["increases"] = 0
        self.stats["decreases"] = 0

    def _sample(self, now: float, system) -> None:
        """Re-read replica signals if ``sample_interval`` has elapsed.

        Lazy by design: called from ``decide`` on the arrival path, reads
        state that already exists, schedules nothing.
        """
        prev = self._last_sample
        if prev is not None and now - prev[0] < self.config.sample_interval:
            return
        signals = [node.load_signal() for node in system.replicas.values()]
        if not signals:
            return
        busy_now = max(s.busy_time for s in signals)
        backlog = max(s.backlog_per_core for s in signals)
        overloaded = backlog > self.config.queue_high_water
        if prev is not None and not overloaded:
            elapsed = now - prev[0]
            cores = max(s.cores for s in signals)
            if elapsed > 0:
                utilization = (busy_now - prev[1]) / (elapsed * cores)
                overloaded = utilization > self.config.target_utilization
        self._last_sample = (now, busy_now)
        if overloaded:
            self.cap = max(self.config.min_cap, self.cap * self.config.decrease_factor)
            self.stats["decreases"] += 1
        else:
            self.cap += self.config.additive_increase
            self.stats["increases"] += 1

    def decide(self, now: float, in_flight: int, system) -> str:
        self._sample(now, system)
        if in_flight < self.cap:
            return ADMIT
        self._record_shed(in_flight)
        return SHED

    def current_cap(self) -> float | None:
        return self.cap


POLICIES = {
    "none": NoAdmission,
    "static-cap": StaticCapPolicy,
    "aimd": AdditiveIncreaseShedding,
}


def make_policy(config: AdmissionConfig) -> AdmissionPolicy:
    try:
        cls = POLICIES[config.policy]
    except KeyError:
        raise ValueError(
            f"unknown admission policy {config.policy!r} "
            f"(have: {', '.join(sorted(POLICIES))})"
        ) from None
    return cls(config)
