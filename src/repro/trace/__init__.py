"""Deterministic tracing & protocol observability.

The simulator reproduces the paper's *endpoints* (throughput, latency);
this subpackage opens the box in between:

* :mod:`repro.trace.tracer` — a zero-overhead-when-disabled flight
  recorder attached to the simulator, recording structured events and
  transaction-lifecycle spans.
* :mod:`repro.trace.export` — Chrome ``trace_event`` JSON export
  (viewable in ``chrome://tracing`` / Perfetto) and the canonical trace
  digest used as a determinism/regression oracle.
* :mod:`repro.trace.analysis` — per-phase latency breakdowns, per-node
  CPU utilization timelines, and network timelines computed from a
  recorded trace.

Because the DES is deterministic, traces are bit-identical across runs
for a given config + seed: a protocol change that alters the message
schedule changes the trace digest.

This ``__init__`` deliberately re-exports only the stdlib-only tracer
core; the sim kernel imports it, so it must not pull in analysis/export
(which depend on :mod:`repro.sim.monitor`).
"""

from repro.trace.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = ["NULL_TRACER", "NullTracer", "TraceEvent", "Tracer"]
