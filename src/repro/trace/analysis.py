"""Turning raw traces into the questions the paper answers qualitatively.

Three views over a recorded :class:`~repro.trace.tracer.Tracer`:

* :func:`phase_histograms` / :func:`render_phase_breakdown` — where does
  a transaction's latency go?  p50/p95/p99 per lifecycle phase
  (``execute``/``st1``/``st2``/``writeback``/``fallback``), per system.
* :func:`transaction_phases` — the phase timeline of one transaction;
  the client-side phases tile, so their durations sum to the
  transaction's end-to-end latency (asserted in tests).
* :func:`cpu_utilization` / :func:`network_timeline` — which replica's
  CPU queue saturates first, and when messages flow/drop.
"""

from __future__ import annotations

from repro.sim.monitor import Histogram
from repro.trace.tracer import TraceEvent, Tracer

#: Client-side transaction lifecycle phases, in protocol order.  The
#: first four tile the end-to-end latency of a transaction attempt;
#: ``fallback`` overlaps ``st1`` (finishing a blocking dependency).
TXN_PHASES = ("execute", "st1", "st2", "writeback", "fallback")


# ---------------------------------------------------------------------------
# Per-phase latency breakdown
# ---------------------------------------------------------------------------
def phase_histograms(tracer: Tracer) -> dict[str, Histogram]:
    """One duration histogram per observed ``txn``-category phase."""
    hists: dict[str, Histogram] = {}
    for event in tracer:
        if event.category != "txn" or event.dur is None:
            continue
        hist = hists.get(event.name)
        if hist is None:
            hist = hists[event.name] = Histogram(event.name)
        hist.record(event.dur)
    return hists


def render_phase_breakdown(tracer: Tracer, title: str = "phase breakdown") -> str:
    """A per-phase latency table (milliseconds), in protocol order."""
    hists = phase_histograms(tracer)
    lines = [f"--- {title} ---"]
    if not hists:
        lines.append("  (no txn spans recorded)")
        return "\n".join(lines)
    lines.append(
        f"  {'phase':<10} {'count':>7} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9}   (ms)"
    )
    ordered = [p for p in TXN_PHASES if p in hists]
    ordered += sorted(set(hists) - set(TXN_PHASES))
    for phase in ordered:
        s = hists[phase].summary()
        lines.append(
            f"  {phase:<10} {s['count']:>7} {s['mean'] * 1e3:>9.3f} "
            f"{s['p50'] * 1e3:>9.3f} {s['p95'] * 1e3:>9.3f} {s['p99'] * 1e3:>9.3f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Open-loop load breakdown (repro.load generator spans)
# ---------------------------------------------------------------------------
#: Spans the open-loop generator records: ``queued`` (admission-delay
#: parking) and ``inflight`` (admit -> final outcome, retries included).
LOAD_PHASES = ("queued", "inflight")


def load_histograms(tracer: Tracer) -> dict[str, Histogram]:
    """One duration histogram per ``load``-category span."""
    hists: dict[str, Histogram] = {}
    for event in tracer:
        if event.category != "load" or event.dur is None:
            continue
        hist = hists.get(event.name)
        if hist is None:
            hist = hists[event.name] = Histogram(event.name)
        hist.record(event.dur)
    return hists


def shed_count(tracer: Tracer) -> int:
    """Arrivals the admission policy rejected (``load``/``shed`` instants)."""
    return sum(
        1 for e in tracer if e.category == "load" and e.name == "shed"
    )


def render_load_breakdown(tracer: Tracer, title: str = "load breakdown") -> str:
    """Where an open-loop transaction's client-visible time goes."""
    hists = load_histograms(tracer)
    lines = [f"--- {title} ---"]
    if not hists:
        lines.append("  (no load spans recorded)")
        return "\n".join(lines)
    lines.append(
        f"  {'span':<10} {'count':>7} {'mean':>9} {'p50':>9} {'p95':>9} {'p99':>9}   (ms)"
    )
    ordered = [p for p in LOAD_PHASES if p in hists]
    ordered += sorted(set(hists) - set(LOAD_PHASES))
    for phase in ordered:
        s = hists[phase].summary()
        lines.append(
            f"  {phase:<10} {s['count']:>7} {s['mean'] * 1e3:>9.3f} "
            f"{s['p50'] * 1e3:>9.3f} {s['p95'] * 1e3:>9.3f} {s['p99'] * 1e3:>9.3f}"
        )
    lines.append(f"  shed: {shed_count(tracer)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# One transaction's timeline
# ---------------------------------------------------------------------------
def transaction_phases(tracer: Tracer, txid: str) -> list[TraceEvent]:
    """All ``txn`` spans of one transaction (txid as hex), by begin time."""
    events = [
        e
        for e in tracer
        if e.category == "txn" and e.dur is not None and e.fields.get("txid") == txid
    ]
    events.sort(key=lambda e: e.ts)
    return events


def phase_durations(tracer: Tracer, txid: str) -> dict[str, float]:
    """Phase -> total duration (seconds) for one transaction."""
    durations: dict[str, float] = {}
    for event in transaction_phases(tracer, txid):
        durations[event.name] = durations.get(event.name, 0.0) + event.dur
    return durations


# ---------------------------------------------------------------------------
# Utilization timelines
# ---------------------------------------------------------------------------
def cpu_utilization(
    tracer: Tracer, bucket: float = 0.01, nodes: list[str] | None = None
) -> dict[str, list[tuple[float, float]]]:
    """Per-node busy-core timeline from ``cpu.work`` spans.

    Returns node -> [(bucket_start, busy_cores)], where ``busy_cores``
    is the average number of cores occupied during that bucket (a span's
    queueing wait is excluded — only its ``cost`` is busy time).
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    busy: dict[str, dict[int, float]] = {}
    horizon = 0.0
    for event in tracer:
        if event.category != "cpu" or event.dur is None:
            continue
        if nodes is not None and event.node not in nodes:
            continue
        cost = float(event.fields.get("cost", event.dur))
        end = event.ts + event.dur
        start = end - cost  # the busy interval occupies the span's tail
        horizon = max(horizon, end)
        per_node = busy.setdefault(event.node, {})
        index = int(start / bucket)
        while cost > 1e-15 and index * bucket < end:
            slice_end = min(end, (index + 1) * bucket)
            slice_start = max(start, index * bucket)
            chunk = min(cost, max(0.0, slice_end - slice_start))
            per_node[index] = per_node.get(index, 0.0) + chunk
            cost -= chunk
            index += 1
    timelines: dict[str, list[tuple[float, float]]] = {}
    buckets = int(horizon / bucket) + 1 if busy else 0
    for node, chunks in sorted(busy.items()):
        timelines[node] = [
            (i * bucket, chunks.get(i, 0.0) / bucket) for i in range(buckets)
        ]
    return timelines


def network_timeline(
    tracer: Tracer, bucket: float = 0.01
) -> list[tuple[float, int, int, int]]:
    """[(bucket_start, sends, delivers, drops)] from ``net`` events."""
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    counts: dict[int, list[int]] = {}
    for event in tracer:
        if event.category != "net":
            continue
        row = counts.setdefault(int(event.ts / bucket), [0, 0, 0])
        if event.name == "send":
            row[0] += 1
        elif event.name == "deliver":
            row[1] += 1
        elif event.name == "drop":
            row[2] += 1
    if not counts:
        return []
    last = max(counts)
    return [
        (i * bucket, *counts.get(i, [0, 0, 0])) for i in range(last + 1)
    ]


def render_utilization(
    tracer: Tracer, bucket: float = 0.01, top: int = 8
) -> str:
    """Compact per-node CPU timeline (busiest nodes first)."""
    timelines = cpu_utilization(tracer, bucket=bucket)
    lines = [f"--- cpu utilization (busy cores, bucket={bucket * 1e3:.0f}ms) ---"]
    totals = {
        node: sum(u for _, u in series) for node, series in timelines.items()
    }
    for node in sorted(totals, key=lambda n: -totals[n])[:top]:
        series = timelines[node]
        cells = " ".join(f"{u:4.1f}" for _, u in series[:16])
        lines.append(f"  {node:<14} {cells}")
    if not timelines:
        lines.append("  (no cpu spans recorded)")
    return "\n".join(lines)
