"""Chrome ``trace_event`` export and the canonical trace digest.

The exported JSON follows the Trace Event Format's JSON-object flavor:
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with one process
(the simulation) and one thread per simulated node.  Spans become ``X``
(complete) events, instantaneous events become ``i`` events, and thread
names are declared with ``M`` (metadata) events — loadable directly into
``chrome://tracing`` or https://ui.perfetto.dev.

Exports are canonical (sorted keys, fixed separators, deterministic tid
assignment), so byte-identical traces ⇔ identical runs; the sha256
:func:`trace_digest` of the export is the regression oracle tests use.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Iterable

from repro.trace.tracer import TraceEvent, Tracer

#: Event phases the exporter emits (subset of the trace_event spec).
_PHASES = {"X", "i", "M"}


def _thread_ids(events: Iterable[TraceEvent]) -> dict[str, int]:
    """Deterministic node -> tid map (first-appearance order, from 1)."""
    tids: dict[str, int] = {}
    for event in events:
        if event.node not in tids:
            tids[event.node] = len(tids) + 1
    return tids


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """Convert recorded events into trace_event dicts (µs timestamps)."""
    events = tracer.events
    tids = _thread_ids(events)
    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": node or "(unnamed)"},
        }
        for node, tid in tids.items()
    ]
    for event in events:
        entry: dict[str, Any] = {
            "pid": 1,
            "tid": tids[event.node],
            "name": f"{event.category}.{event.name}",
            "cat": event.category,
            "ts": event.ts * 1e6,
            "args": event.fields,
        }
        if event.dur is None:
            entry["ph"] = "i"
            entry["s"] = "t"  # instant scope: thread
        else:
            entry["ph"] = "X"
            entry["dur"] = event.dur * 1e6
        out.append(entry)
    return out


def export_chrome_json(tracer: Tracer) -> str:
    """Canonical JSON export (sorted keys, no whitespace variance)."""
    document = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {"droppedEvents": tracer.dropped_events},
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def trace_digest(tracer: Tracer) -> str:
    """sha256 of the canonical export: identical runs ⇔ identical digests."""
    return hashlib.sha256(export_chrome_json(tracer).encode()).hexdigest()


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the canonical export to ``path``; returns its digest."""
    payload = export_chrome_json(tracer)
    with open(path, "w") as fh:
        fh.write(payload)
    return hashlib.sha256(payload.encode()).hexdigest()


# ---------------------------------------------------------------------------
# Schema validation (used by the trace-smoke test; no external deps)
# ---------------------------------------------------------------------------
def validate_chrome_trace(document: Any) -> list[str]:
    """Validate a parsed export against the trace_event JSON-object form.

    Returns a list of human-readable problems (empty ⇔ valid).  Checks
    the subset of the spec this exporter uses, strictly enough that a
    malformed exporter cannot pass: required keys, phase-specific keys,
    and type/sign constraints on timestamps and durations.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ["top level must be a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: pid must be an int")
        if not isinstance(event.get("tid"), int):
            problems.append(f"{where}: tid must be an int")
        if ph == "M":
            args = event.get("args")
            if not isinstance(args, dict) or "name" not in args:
                problems.append(f"{where}: metadata event needs args.name")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if not isinstance(event.get("args", {}), dict):
            problems.append(f"{where}: args must be an object")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs non-negative dur")
        elif ph == "i":
            if event.get("s") not in ("g", "p", "t"):
                problems.append(f"{where}: instant event needs scope s in g/p/t")
    return problems
