"""The deterministic flight recorder at the heart of `repro.trace`.

A :class:`Tracer` attaches to one :class:`~repro.sim.loop.Simulator` and
records structured events — (simulated timestamp, node, category, name,
optional duration, fields) — into a bounded in-memory ring buffer.
Instrumentation hooks throughout the simulator, crypto layer, and
protocol cores call :meth:`Tracer.instant`, :meth:`Tracer.complete`, or
``with tracer.span(...)``.

Two properties are load-bearing:

* **Zero overhead when disabled.**  Every simulator carries the
  module-level :data:`NULL_TRACER` by default; hooks guard on
  ``tracer.enabled`` (a plain attribute read) before building any event,
  and the null tracer's methods are no-ops.  Tracing never schedules
  events, never sleeps, never charges CPU, and never draws from an RNG
  stream — so enabling it cannot change simulated time, and disabling it
  cannot change anything at all.

* **Determinism.**  Every recorded value derives from simulator state
  (names, types, seeded randomness, virtual time).  Two runs of the same
  config + seed produce byte-identical traces; the export digest
  (:func:`repro.trace.export.trace_digest`) is therefore a regression
  oracle for the whole message schedule.

This module imports nothing from the rest of ``repro`` so the sim kernel
can depend on it without cycles.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Iterator


class TraceEvent:
    """One recorded event.

    ``dur`` is ``None`` for instantaneous events and a duration in
    simulated seconds for spans.  ``fields`` must hold only
    JSON-serializable scalars (str/int/float/bool/None) so exports are
    canonical.
    """

    __slots__ = ("ts", "node", "category", "name", "dur", "fields")

    def __init__(
        self,
        ts: float,
        node: str,
        category: str,
        name: str,
        dur: float | None = None,
        fields: dict[str, Any] | None = None,
    ) -> None:
        self.ts = ts
        self.node = node
        self.category = category
        self.name = name
        self.dur = dur
        self.fields = fields or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dur = "" if self.dur is None else f" dur={self.dur:.6f}"
        return f"<TraceEvent {self.ts:.6f} {self.node} {self.category}.{self.name}{dur}>"


class _Span:
    """Context manager that records a complete event on exit."""

    __slots__ = ("_tracer", "_node", "_category", "_name", "_fields", "_begin")

    def __init__(self, tracer: "Tracer", node: str, category: str, name: str, fields: dict) -> None:
        self._tracer = tracer
        self._node = node
        self._category = category
        self._name = name
        self._fields = fields
        self._begin = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach a field discovered while the span is open."""
        self._fields[key] = value

    def __enter__(self) -> "_Span":
        self._begin = self._tracer.now()
        return self

    def __exit__(self, *exc: Any) -> None:
        self._tracer.complete(
            self._node, self._category, self._name, self._begin, self._tracer.now(),
            **self._fields,
        )


class _NullSpan:
    """Shared no-op span handed out by the null tracer."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every operation is a no-op.

    Hooks check ``tracer.enabled`` before doing any work, so the null
    tracer's methods exist only as a safety net for unguarded calls.
    """

    enabled = False
    events: tuple = ()
    dropped_events = 0

    def now(self) -> float:
        return 0.0

    def instant(self, node: str, category: str, name: str, **fields: Any) -> None:
        pass

    def complete(
        self, node: str, category: str, name: str, begin: float, end: float, **fields: Any
    ) -> None:
        pass

    def span(self, node: str, category: str, name: str, **fields: Any) -> _NullSpan:
        return _NULL_SPAN


#: The default tracer on every Simulator; replaced by ``attach_tracer``.
NULL_TRACER = NullTracer()


class Tracer:
    """A bounded in-memory flight recorder for one simulation.

    Attach with ``sim.attach_tracer(tracer)`` (or pass ``sim=``); the
    simulator then exposes it as ``sim.tracer`` and every instrumented
    layer records through it.  When the buffer is full the *oldest*
    events are evicted (flight-recorder semantics) and counted in
    :attr:`dropped_events`.
    """

    enabled = True

    def __init__(self, sim: Any = None, capacity: int = 200_000) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped_events = 0
        self.sim = sim
        if sim is not None:
            sim.attach_tracer(self)

    # -- clock ----------------------------------------------------------
    def now(self) -> float:
        if self.sim is None:
            raise RuntimeError("tracer is not attached to a simulator")
        return self.sim.now

    # -- recording ------------------------------------------------------
    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped_events += 1
        self._events.append(event)

    def instant(self, node: str, category: str, name: str, **fields: Any) -> None:
        """Record a point-in-time event at the current simulated time."""
        self._append(TraceEvent(self.now(), node, category, name, None, fields))

    def complete(
        self, node: str, category: str, name: str, begin: float, end: float, **fields: Any
    ) -> None:
        """Record a span with explicit boundaries (``begin <= end``)."""
        self._append(TraceEvent(begin, node, category, name, end - begin, fields))

    def span(self, node: str, category: str, name: str, **fields: Any) -> _Span:
        """Context manager measuring the simulated time its body spans."""
        return _Span(self, node, category, name, fields)

    # -- access ----------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped_events = 0
