"""Per-region observability for geo runs: health rules + edge probes.

Geo runs reuse the standard telemetry pipeline (:mod:`repro.obs`) but
evaluate the churn rules *per region*: every rule below is expanded via
:func:`repro.obs.health.expand_rule_per_label` into one clone per
region, restricted to series labeled ``{region: r}``, so a RunReport
names the region that degraded (``geo-fallback-churn[eu-west]``) instead
of hiding a regional brown-out inside a fleet-wide sum.  The region
labels exist because geo deployments set ``Node.region`` on replicas,
proxies and users, which switches the core's fallback/view-change metric
sites onto their region-labeled variants.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.health import HealthRule, expand_rule_per_label


def geo_base_rules() -> list[HealthRule]:
    """The per-region rule templates (pre-expansion)."""
    return [
        HealthRule(
            name="geo-fallback-churn",
            metric="basil_fallback_invocations_total",
            aggregate="rate",
            threshold=200.0,
            for_seconds=0.02,
            severity="degraded",
            description="fallback recovery invoked at storm rate in one region",
        ),
        HealthRule(
            name="geo-view-churn",
            metric="basil_view_changes_total",
            aggregate="rate",
            threshold=100.0,
            for_seconds=0.02,
            severity="degraded",
            description="one region's replicas adopting fallback views at storm rate",
        ),
        HealthRule(
            name="geo-writeback-churn",
            metric="geo_writeback_aborts_total",
            aggregate="rate",
            threshold=200.0,
            for_seconds=0.02,
            severity="degraded",
            description="one region's edge proxy retrying write-back batches at storm rate",
        ),
        HealthRule(
            name="geo-read-stall",
            metric="geo_read_failures_total",
            aggregate="max",
            threshold=0.0,
            op=">",
            severity="critical",
            description="core quorum reads from one region failed outright",
        ),
    ]


def geo_health_rules(regions: Sequence[str]) -> list[HealthRule]:
    """Every geo rule template expanded to one clone per region."""
    rules: list[HealthRule] = []
    for rule in geo_base_rules():
        rules.extend(expand_rule_per_label(rule, "region", regions))
    return rules


def edge_probe(proxies: dict[str, Any]):
    """A ticker probe over the edge tier (pure observation).

    Samples each proxy's lease-cache population and write-back queue
    depth per tick, labeled by region.
    """

    def _sample():
        out = []
        for region in sorted(proxies):
            proxy = proxies[region]
            out.append(
                ("geo_lease_entries", {"region": region},
                 float(proxy.lease_entries()))
            )
            out.append(
                ("geo_writeback_queue_depth", {"region": region},
                 float(proxy.writeback_queue_depth()))
            )
        return out

    return _sample
