"""Region placement of a Basil deployment and the matrix latency model.

**Placement.** Each shard's ``5f+1`` replicas are spread round-robin
across the topology's regions (replica ``i`` lives in region
``i % R``), so every shard spans every region: a commit quorum of
``3f+1`` out of ``5f+1`` necessarily hears from at least two regions and
pays WAN latency — the regime where Basil's quorum-latency results
(PAPER.md Fig 4/6) change shape.  The serving tier is sticky: region
``r`` hosts its own :class:`~repro.geo.edge.EdgeProxy` (``edge/{r}``)
and end users (``user/{r}/{i}``), so user traffic never crosses a
region boundary before the proxy decides it must.

**Latency.** :class:`RegionLatencyModel` implements the
:class:`repro.sim.network.LatencyModel` protocol over a
:class:`~repro.geo.topology.GeoTopology`: each message samples
``base + uniform(0, jitter)`` for its endpoints' region pair — one RNG
draw per message iff the pair has jitter, same contract as the uniform
model.
"""

from __future__ import annotations

from typing import Any

from repro.core.sharding import Sharder
from repro.errors import SimulationError
from repro.geo.topology import GeoTopology


def proxy_name(region: str) -> str:
    return f"edge/{region}"


def user_name(region: str, index: int) -> str:
    return f"user/{region}/{index}"


class GeoPlacement:
    """name -> region mapping for one deployment on one topology."""

    def __init__(
        self,
        topology: GeoTopology,
        config: Any,
        users_per_region: int = 0,
        mode: str = "edge",
    ) -> None:
        self.topology = topology
        self.config = config
        self.users_per_region = users_per_region
        self.mode = mode
        regions = topology.regions
        self._regions_of: dict[str, str] = {}
        self._members: dict[str, list[str]] = {r: [] for r in regions}
        sharder = Sharder(config)
        for shard in range(config.num_shards):
            for i, name in enumerate(sharder.members(shard)):
                self._place(name, regions[i % len(regions)])
        for region in regions:
            if mode == "edge":
                self._place(proxy_name(region), region)
            for i in range(users_per_region):
                self._place(user_name(region, i), region)

    def _place(self, name: str, region: str) -> None:
        self._regions_of[name] = region
        self._members[region].append(name)

    # -- lookups ---------------------------------------------------------
    def region_of(self, name: str) -> str:
        region = self._regions_of.get(name)
        if region is None:
            raise SimulationError(
                f"node {name!r} has no region placement on topology "
                f"{self.topology.name!r}"
            )
        return region

    def nodes_in(self, region: str) -> tuple[str, ...]:
        """Every node hosted in ``region`` (replicas + proxy + users)."""
        try:
            return tuple(self._members[region])
        except KeyError:
            raise SimulationError(
                f"unknown region {region!r} on topology {self.topology.name!r}"
            ) from None

    def replicas_in(self, region: str) -> tuple[str, ...]:
        return tuple(n for n in self.nodes_in(region) if n.startswith("s"))

    def roster(self) -> tuple[str, ...]:
        """Every node name in the deployment, in placement order."""
        return tuple(self._regions_of)


class RegionLatencyModel:
    """Per-(src, dst) latency looked up through a region placement.

    Implements the :class:`repro.sim.network.LatencyModel` protocol.
    Pair parameters are cached per (src, dst) name pair, so the hot
    ``sample`` path is one dict hit + the usual jitter draw.
    """

    __slots__ = ("topology", "placement", "_floor", "_pairs")

    def __init__(self, topology: GeoTopology, placement: GeoPlacement) -> None:
        self.topology = topology
        self.placement = placement
        self._floor = min(link.base for link in topology.links)
        self._pairs: dict[tuple[str, str], tuple[float, float]] = {}

    def _pair(self, src: str, dst: str) -> tuple[float, float]:
        params = self._pairs.get((src, dst))
        if params is None:
            params = self.topology.latency(
                self.placement.region_of(src), self.placement.region_of(dst)
            )
            self._pairs[(src, dst)] = params
        return params

    def sample(self, rng: Any, src: str, dst: str) -> float:
        base, jitter = self._pair(src, dst)
        if jitter:
            base += rng.uniform(0.0, jitter)
        return base

    def floor(self) -> float:
        return self._floor

    def describe(self, src: str, dst: str) -> str:
        a = self.placement.region_of(src)
        b = self.placement.region_of(dst)
        base, jitter = self.topology.latency(a, b)
        return f"region pair {a} <-> {b} ({base:g}s base + {jitter:g}s jitter)"
