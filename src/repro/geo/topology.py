"""Named WAN topologies: regions and a per-pair latency matrix.

A :class:`GeoTopology` is a pure, picklable description of a deployment
footprint: a tuple of region names and one ``(base, jitter)`` latency
entry per unordered region pair (including the diagonal, which models
the intra-region link).  Latencies are *one-way* seconds, matching
``NetworkConfig.one_way_latency``; jitter is an additive uniform draw on
top of the base, exactly like the uniform model's.

Presets (rounded from public inter-region RTT tables, halved to one-way):

* :func:`wan3` — us-east / eu-west / ap-south.
* :func:`wan5` — adds us-west and ap-east.

Arbitrary matrices load from JSON via :meth:`GeoTopology.from_dict`, so
a topology is addressable as plain data from the CLI
(``python -m repro.geo sweep --topology my_matrix.json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import SimulationError

US = 1e-6
MS = 1e-3


def _pair_key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass(frozen=True)
class RegionLink:
    """One latency-matrix entry: the ``a <-> b`` link class (symmetric)."""

    a: str
    b: str
    base: float  #: one-way base latency, seconds
    jitter: float = 0.0  #: additive uniform jitter bound, seconds

    def __post_init__(self) -> None:
        if self.base < 0.0 or self.jitter < 0.0:
            raise SimulationError(
                f"region pair {self.a} <-> {self.b} has negative latency"
            )


@dataclass(frozen=True)
class GeoTopology:
    """A named multi-region deployment footprint."""

    name: str
    regions: tuple[str, ...]
    links: tuple[RegionLink, ...]

    def __post_init__(self) -> None:
        if len(self.regions) < 1:
            raise SimulationError("topology needs at least one region")
        if len(set(self.regions)) != len(self.regions):
            raise SimulationError(f"duplicate region names in {self.name!r}")
        known = set(self.regions)
        seen: set[tuple[str, str]] = set()
        for link in self.links:
            if link.a not in known or link.b not in known:
                raise SimulationError(
                    f"link {link.a} <-> {link.b} names an unknown region"
                )
            key = _pair_key(link.a, link.b)
            if key in seen:
                raise SimulationError(
                    f"duplicate latency entry for region pair {key[0]} <-> {key[1]}"
                )
            seen.add(key)
        for i, a in enumerate(self.regions):
            for b in self.regions[i:]:
                if _pair_key(a, b) not in seen:
                    raise SimulationError(
                        f"topology {self.name!r} is missing the latency entry "
                        f"for region pair {a} <-> {b}"
                    )

    # -- lookups ---------------------------------------------------------
    @property
    def _matrix(self) -> dict[tuple[str, str], RegionLink]:
        matrix = self.__dict__.get("_matrix_memo")
        if matrix is None:
            matrix = {_pair_key(l.a, l.b): l for l in self.links}
            object.__setattr__(self, "_matrix_memo", matrix)
        return matrix

    def link(self, a: str, b: str) -> RegionLink:
        try:
            return self._matrix[_pair_key(a, b)]
        except KeyError:
            raise SimulationError(
                f"no latency entry for region pair {a} <-> {b} in {self.name!r}"
            ) from None

    def latency(self, a: str, b: str) -> tuple[float, float]:
        """The ``(base, jitter)`` one-way latency for the ``a <-> b`` pair."""
        link = self.link(a, b)
        return link.base, link.jitter

    def region_index(self, region: str) -> int:
        try:
            return self.regions.index(region)
        except ValueError:
            raise SimulationError(
                f"unknown region {region!r} (topology {self.name!r} has "
                f"{', '.join(self.regions)})"
            ) from None

    def cross_region_links(self) -> Iterator[RegionLink]:
        for link in self.links:
            if link.a != link.b:
                yield link

    def min_cross_region(self) -> RegionLink:
        """The fastest cross-region link (its base is the lookahead basis)."""
        links = list(self.cross_region_links())
        if not links:
            raise SimulationError(
                f"topology {self.name!r} has a single region; a geo run "
                f"needs at least two"
            )
        return min(links, key=lambda l: (l.base, l.a, l.b))

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "regions": list(self.regions),
            "links": [
                {"a": l.a, "b": l.b, "base": l.base, "jitter": l.jitter}
                for l in self.links
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "GeoTopology":
        return cls(
            name=data["name"],
            regions=tuple(data["regions"]),
            links=tuple(
                RegionLink(
                    a=l["a"], b=l["b"],
                    base=float(l["base"]), jitter=float(l.get("jitter", 0.0)),
                )
                for l in data["links"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "GeoTopology":
        return cls.from_dict(json.loads(text))


def _intra(region: str) -> RegionLink:
    """Intra-region link: the classic datacenter defaults (75us + 10us)."""
    return RegionLink(region, region, base=75 * US, jitter=10 * US)


def wan3() -> GeoTopology:
    """3 regions: us-east / eu-west / ap-south."""
    return GeoTopology(
        name="wan3",
        regions=("us-east", "eu-west", "ap-south"),
        links=(
            _intra("us-east"),
            _intra("eu-west"),
            _intra("ap-south"),
            RegionLink("us-east", "eu-west", base=40 * MS, jitter=3 * MS),
            RegionLink("us-east", "ap-south", base=90 * MS, jitter=6 * MS),
            RegionLink("eu-west", "ap-south", base=60 * MS, jitter=5 * MS),
        ),
    )


def wan5() -> GeoTopology:
    """5 regions: the wan3 footprint plus us-west and ap-east."""
    return GeoTopology(
        name="wan5",
        regions=("us-east", "us-west", "eu-west", "ap-south", "ap-east"),
        links=(
            _intra("us-east"),
            _intra("us-west"),
            _intra("eu-west"),
            _intra("ap-south"),
            _intra("ap-east"),
            RegionLink("us-east", "us-west", base=30 * MS, jitter=2 * MS),
            RegionLink("us-east", "eu-west", base=40 * MS, jitter=3 * MS),
            RegionLink("us-east", "ap-south", base=90 * MS, jitter=6 * MS),
            RegionLink("us-east", "ap-east", base=80 * MS, jitter=6 * MS),
            RegionLink("us-west", "eu-west", base=65 * MS, jitter=4 * MS),
            RegionLink("us-west", "ap-south", base=110 * MS, jitter=7 * MS),
            RegionLink("us-west", "ap-east", base=55 * MS, jitter=4 * MS),
            RegionLink("eu-west", "ap-south", base=60 * MS, jitter=5 * MS),
            RegionLink("eu-west", "ap-east", base=95 * MS, jitter=6 * MS),
            RegionLink("ap-south", "ap-east", base=35 * MS, jitter=3 * MS),
        ),
    )


#: Named presets addressable from CLIs and specs.
TOPOLOGIES = {"wan3": wan3, "wan5": wan5}


def get_topology(name_or_path: str) -> GeoTopology:
    """Resolve a preset name or a JSON latency-matrix file path."""
    factory = TOPOLOGIES.get(name_or_path)
    if factory is not None:
        return factory()
    if name_or_path.endswith(".json"):
        with open(name_or_path) as fh:
            return GeoTopology.from_json(fh.read())
    raise SimulationError(
        f"unknown topology {name_or_path!r} "
        f"(presets: {', '.join(sorted(TOPOLOGIES))}; or a .json matrix path)"
    )
