"""Geo-distributed WAN topologies and the edge session tier.

Everything the single-datacenter reproduction lacked to tell the
"millions of interactive users" story:

* :mod:`repro.geo.topology` — named multi-region deployments (3/5-region
  US/EU/APAC presets plus arbitrary JSON latency matrices) with
  per-region-pair base latency + jitter.
* :mod:`repro.geo.latency` — node placement across regions and the
  :class:`RegionLatencyModel` that replaces the uniform network link.
* :mod:`repro.geo.plan` — :class:`GeoSpec` run descriptions and
  region-per-partition plans whose lookahead is derived from the
  minimum entry of the latency matrix.
* :mod:`repro.geo.edge` — the :class:`EdgeProxy` session tier: sticky
  per-region sessions, read-lease fast paths, write-back batching.
* :mod:`repro.geo.faults` — region-correlated fault specs layered on
  the :mod:`repro.faults` schedule format.
* :mod:`repro.geo.runner` — build + drive a geo deployment, sequential
  or under :class:`repro.parallel.ParallelRunner`.

CLI: ``python -m repro.geo sweep`` compares edge-decoupled vs
direct-to-core serving across topologies.
"""

from repro.geo.edge import EdgeProxy, EdgeUser
from repro.geo.latency import GeoPlacement, RegionLatencyModel
from repro.geo.plan import GeoSpec, derive_lookahead, geo_plan
from repro.geo.runner import GeoRunner, build_geo_system
from repro.geo.topology import GeoTopology, get_topology, wan3, wan5

__all__ = [
    "EdgeProxy",
    "EdgeUser",
    "GeoPlacement",
    "GeoRunner",
    "GeoSpec",
    "GeoTopology",
    "RegionLatencyModel",
    "build_geo_system",
    "derive_lookahead",
    "geo_plan",
    "get_topology",
    "wan3",
    "wan5",
]
