"""The edge session tier: sticky regional proxies in front of the core.

An :class:`EdgeProxy` is a full Basil client pinned to one region
(``edge/{region}``).  End users (:class:`EdgeUser`) are sticky to their
region's proxy, so an interactive operation only crosses a region
boundary when the proxy decides it must:

* **Reads** hit a read-lease cache first: a quorum-read result is served
  locally for ``lease_ttl`` simulated seconds (bounded staleness — the
  session-decoupling trade-off).  Pending write-back values overlay the
  cache, so a region reads its own writes.  Misses fall through to one
  Basil quorum read (single-flight per key: concurrent misses on a key
  share one core round trip), released immediately via
  ``abort_execution`` so no RTS fence outlives the lease fill.
* **Writes** buffer into a write-back batch flushed every
  ``flush_interval`` (or when ``flush_max`` keys accumulate) as one
  blind-write Basil transaction; users are acked after the core commits.

:class:`DirectUser` is the control arm: the same op stream issued as
plain Basil quorum reads and single-write transactions straight at the
core, paying cross-region quorum latency on every operation.

All serving-tier activity traces under the ``"geo"`` category and emits
``geo_*`` metrics labeled by region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.client import BasilClient
from repro.errors import ProtocolError, SimTimeoutError
from repro.sim.loop import Future
from repro.sim.node import Node


# ---------------------------------------------------------------------------
# Session messages (user <-> proxy, intra-region)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EdgeRead:
    req_id: int
    key: Any


@dataclass(frozen=True)
class EdgeReadReply:
    req_id: int
    key: Any
    value: Any
    source: str  #: "pending" | "lease" | "core" | "stale"


@dataclass(frozen=True)
class EdgeWrite:
    req_id: int
    key: Any
    value: Any


@dataclass(frozen=True)
class EdgeWriteReply:
    req_id: int
    key: Any
    committed: bool


# ---------------------------------------------------------------------------
# Latency accounting
# ---------------------------------------------------------------------------
def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class RegionStats:
    """One region's end-user latency accumulator (window-filtered)."""

    __slots__ = (
        "region", "window_start", "window_end", "reads", "writes",
        "read_total", "write_total", "failures",
    )

    def __init__(self, region: str, window_start: float, window_end: float) -> None:
        self.region = region
        self.window_start = window_start
        self.window_end = window_end
        self.reads: list[float] = []  #: in-window read latencies, seconds
        self.writes: list[float] = []
        self.read_total = 0
        self.write_total = 0
        self.failures = 0

    def record(self, op: str, latency: float, completed_at: float, ok: bool = True) -> None:
        if op == "read":
            self.read_total += 1
        else:
            self.write_total += 1
        if not ok:
            self.failures += 1
            return
        if self.window_start <= completed_at < self.window_end:
            (self.reads if op == "read" else self.writes).append(latency)

    def summary(self) -> dict[str, Any]:
        return {
            "reads": self.read_total,
            "writes": self.write_total,
            "failures": self.failures,
            "read_p50": percentile(self.reads, 0.50),
            "read_p99": percentile(self.reads, 0.99),
            "read_mean": sum(self.reads) / len(self.reads) if self.reads else 0.0,
            "write_p50": percentile(self.writes, 0.50),
            "write_p99": percentile(self.writes, 0.99),
            "write_mean": sum(self.writes) / len(self.writes) if self.writes else 0.0,
        }


# ---------------------------------------------------------------------------
# The proxy
# ---------------------------------------------------------------------------
class EdgeProxy(BasilClient):
    """A region's session endpoint: lease reads + write-back batching."""

    def __init__(
        self,
        sim: Any,
        client_id: int,
        network: Any,
        config: Any,
        sharder: Any,
        registry: Any,
        *,
        region: str,
        lease_ttl: float = 0.5,
        flush_interval: float = 0.02,
        flush_max: int = 8,
    ) -> None:
        super().__init__(
            sim, client_id, network, config, sharder, registry,
            name=f"edge/{region}",
        )
        self.region = region
        self.lease_ttl = lease_ttl
        self.flush_interval = flush_interval
        self.flush_max = flush_max
        self._leases: dict[Any, tuple[Any, float]] = {}  #: key -> (value, expiry)
        self._pending_writes: dict[Any, Any] = {}  #: write-back buffer
        self._ack_waiters: list[tuple[str, EdgeWrite]] = []
        self._read_waiters: dict[Any, list[tuple[str, EdgeRead]]] = {}
        self._flushing = False
        # serving-tier accounting (read by the geo runner)
        self.lease_hits = 0
        self.lease_misses = 0
        self.read_failures = 0
        self.writebacks = 0
        self.writeback_commits = 0
        self.writeback_aborts = 0
        self.core_commits = 0
        self.core_fast_commits = 0
        self.core_aborts = 0

    def start(self) -> None:
        """Arm the periodic write-back flush (call once after register)."""
        self.spawn(self._flush_loop(), name=f"{self.name}/flush")

    # -- message dispatch ------------------------------------------------
    async def handle_message(self, sender: str, message: Any) -> None:
        if isinstance(message, EdgeRead):
            self._on_read(sender, message)
            return
        if isinstance(message, EdgeWrite):
            self._on_write(sender, message)
            return
        await super().handle_message(sender, message)

    # -- reads -----------------------------------------------------------
    def _on_read(self, sender: str, msg: EdgeRead) -> None:
        key = msg.key
        if key in self._pending_writes:  # region-local read-your-writes
            self._reply_read(sender, msg, self._pending_writes[key], "pending")
            return
        lease = self._leases.get(key)
        if lease is not None and lease[1] > self.sim.now:
            self.lease_hits += 1
            metrics = self.sim.metrics
            if metrics.enabled:
                metrics.counter("geo_lease_hits_total", region=self.region).add()
            self._reply_read(sender, msg, lease[0], "lease")
            return
        self.lease_misses += 1
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter("geo_lease_misses_total", region=self.region).add()
        waiters = self._read_waiters.get(key)
        if waiters is not None:  # single-flight: join the in-flight fill
            waiters.append((sender, msg))
            return
        self._read_waiters[key] = [(sender, msg)]
        self.spawn(self._fill_lease(key), name=f"{self.name}/lease-fill")

    async def _fill_lease(self, key: Any) -> None:
        t0 = self.sim.now
        value, ok = None, False
        builder = self.begin()
        try:
            result = await self.read(builder, key)
            value, ok = result.value, True
        except (ProtocolError, SimTimeoutError):
            self.read_failures += 1
            metrics = self.sim.metrics
            if metrics.enabled:
                metrics.counter("geo_read_failures_total", region=self.region).add()
            lease = self._leases.get(key)
            if lease is not None:
                value = lease[0]  # serve the stale lease rather than nothing
        finally:
            self.abort_execution(builder)  # release RTS marks immediately
        if ok:
            self._leases[key] = (value, self.sim.now + self.lease_ttl)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.complete(
                self.name, "geo", "lease-fill", t0, self.sim.now,
                key=str(key), ok=ok,
            )
        for sender, msg in self._read_waiters.pop(key, ()):
            self._reply_read(sender, msg, value, "core" if ok else "stale")

    def _reply_read(self, sender: str, msg: EdgeRead, value: Any, source: str) -> None:
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter(
                "geo_reads_total", region=self.region, source=source
            ).add()
        self.network.send(
            self, sender, EdgeReadReply(msg.req_id, msg.key, value, source)
        )

    # -- writes ----------------------------------------------------------
    def _on_write(self, sender: str, msg: EdgeWrite) -> None:
        self._pending_writes[msg.key] = msg.value
        self._ack_waiters.append((sender, msg))
        metrics = self.sim.metrics
        if metrics.enabled:
            metrics.counter("geo_writes_total", region=self.region).add()
        if len(self._pending_writes) >= self.flush_max and not self._flushing:
            self.spawn(self._flush_once(), name=f"{self.name}/flush-now")

    async def _flush_loop(self) -> None:
        while True:
            await self.sim.sleep(self.flush_interval)
            if self._pending_writes and not self._flushing:
                await self._flush_once()

    async def _flush_once(self) -> None:
        if self._flushing or not self._pending_writes:
            return
        self._flushing = True
        try:
            from repro.core.api import TransactionSession

            keys = list(self._pending_writes)[: self.flush_max]
            batch = {k: self._pending_writes.pop(k) for k in keys}
            waiters = [w for w in self._ack_waiters if w[1].key in batch]
            self._ack_waiters = [w for w in self._ack_waiters if w[1].key not in batch]
            t0 = self.sim.now
            self.writebacks += 1
            committed = False
            for _attempt in range(3):
                session = TransactionSession(self)
                for key, value in batch.items():
                    session.write(key, value)
                try:
                    result = await session.commit()
                except (ProtocolError, SimTimeoutError):
                    self.core_aborts += 1
                    break
                if result.committed:
                    committed = True
                    self.core_commits += 1
                    if result.fast_path:
                        self.core_fast_commits += 1
                    break
                self.core_aborts += 1
                self.writeback_aborts += 1
                metrics = self.sim.metrics
                if metrics.enabled:
                    metrics.counter(
                        "geo_writeback_aborts_total", region=self.region
                    ).add()
            if committed:
                self.writeback_commits += 1
                expiry = self.sim.now + self.lease_ttl
                for key, value in batch.items():
                    self._leases[key] = (value, expiry)
            metrics = self.sim.metrics
            if metrics.enabled:
                metrics.counter(
                    "geo_writebacks_total", region=self.region,
                    outcome="commit" if committed else "abort",
                ).add()
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.complete(
                    self.name, "geo", "writeback", t0, self.sim.now,
                    keys=len(batch), committed=committed,
                )
            for sender, msg in waiters:
                self.network.send(
                    self, sender, EdgeWriteReply(msg.req_id, msg.key, committed)
                )
        finally:
            self._flushing = False

    # -- observability ---------------------------------------------------
    def lease_entries(self) -> int:
        return len(self._leases)

    def writeback_queue_depth(self) -> int:
        return len(self._pending_writes)


# ---------------------------------------------------------------------------
# End users
# ---------------------------------------------------------------------------
class _SessionDriver:
    """Shared closed-loop driver mixin state for both user kinds."""

    def _init_driver(self, workload, rng, stats, stop_issuing, end_time, think_time):
        self._workload = workload
        self._rng = rng
        self._stats = stats
        self._stop_issuing = stop_issuing
        self._end_time = end_time
        self._think_time = think_time

    def _record_op(self, op: str, t0: float, ok: bool, source: str = "") -> None:
        sim = self.sim
        latency = sim.now - t0
        self._stats.record(op, latency, sim.now, ok=ok)
        metrics = sim.metrics
        if metrics.enabled:
            metrics.histogram(
                "geo_user_latency_seconds", region=self.region, op=op
            ).observe(latency)
        tracer = sim.tracer
        if tracer.enabled:
            tracer.complete(
                self.name, "geo", op, t0, sim.now, ok=ok, source=source
            )


class EdgeUser(Node, _SessionDriver):
    """An end user sticky to its region's :class:`EdgeProxy`."""

    def __init__(
        self,
        sim: Any,
        name: str,
        network: Any,
        config: Any,
        *,
        region: str,
        proxy: str,
        workload: Any,
        rng: Any,
        stats: RegionStats,
        stop_issuing: float,
        end_time: float,
        think_time: float = 0.0,
        request_timeout: float = 2.0,
    ) -> None:
        super().__init__(sim, name, config=config.client_node)
        self.region = region
        self.network = network
        self.proxy = proxy
        self.request_timeout = request_timeout
        self._init_driver(workload, rng, stats, stop_issuing, end_time, think_time)
        self._req_seq = 0
        self._pending: dict[int, Future] = {}

    def start(self) -> None:
        self.spawn(self._drive(), name=f"{self.name}/drive")

    async def handle_message(self, sender: str, message: Any) -> None:
        if isinstance(message, (EdgeReadReply, EdgeWriteReply)):
            fut = self._pending.pop(message.req_id, None)
            if fut is not None and not fut.done():
                fut.set_result(message)

    async def _drive(self) -> None:
        sim = self.sim
        while sim.now < self._stop_issuing:
            op, key, value = self._workload.next_op(self._rng)
            t0 = sim.now
            reply = await self._request(op, key, value)
            if reply is None:  # run ended while waiting
                break
            ok = not (isinstance(reply, EdgeWriteReply) and not reply.committed)
            self._record_op(op, t0, ok, source=getattr(reply, "source", ""))
            if self._think_time:
                await sim.sleep(self._think_time)

    async def _request(self, op: str, key: Any, value: Any) -> Any:
        sim = self.sim
        while True:
            self._req_seq += 1
            req_id = self._req_seq
            fut = Future()
            self._pending[req_id] = fut
            if op == "read":
                message: Any = EdgeRead(req_id, key)
            else:
                message = EdgeWrite(req_id, key, value)
            self.network.send(self, self.proxy, message)
            try:
                return await sim.wait_for(self._await(fut), self.request_timeout)
            except SimTimeoutError:
                self._pending.pop(req_id, None)
                if sim.now >= self._end_time:
                    return None

    @staticmethod
    async def _await(fut: Future) -> Any:
        return await fut


class DirectUser(BasilClient, _SessionDriver):
    """The control arm: the same op stream issued straight at the core."""

    def __init__(
        self,
        sim: Any,
        client_id: int,
        network: Any,
        config: Any,
        sharder: Any,
        registry: Any,
        *,
        region: str,
        index: int,
        workload: Any,
        rng: Any,
        stats: RegionStats,
        stop_issuing: float,
        end_time: float,
        think_time: float = 0.0,
    ) -> None:
        super().__init__(
            sim, client_id, network, config, sharder, registry,
            name=f"user/{region}/{index}",
        )
        self.region = region
        self._init_driver(workload, rng, stats, stop_issuing, end_time, think_time)
        self.read_failures = 0
        self.core_commits = 0
        self.core_fast_commits = 0
        self.core_aborts = 0

    def start(self) -> None:
        self.spawn(self._drive(), name=f"{self.name}/drive")

    async def _drive(self) -> None:
        sim = self.sim
        while sim.now < self._stop_issuing:
            op, key, value = self._workload.next_op(self._rng)
            t0 = sim.now
            if op == "read":
                ok = await self._core_read(key)
            else:
                ok = await self._core_write(key, value)
            self._record_op(op, t0, ok, source="core")
            if self._think_time:
                await sim.sleep(self._think_time)

    async def _core_read(self, key: Any) -> bool:
        builder = self.begin()
        try:
            await self.read(builder, key)
            return True
        except (ProtocolError, SimTimeoutError):
            self.read_failures += 1
            metrics = self.sim.metrics
            if metrics.enabled:
                metrics.counter("geo_read_failures_total", region=self.region).add()
            return False
        finally:
            self.abort_execution(builder)

    async def _core_write(self, key: Any, value: Any) -> bool:
        from repro.core.api import TransactionSession

        for _attempt in range(3):
            session = TransactionSession(self)
            session.write(key, value)
            try:
                result = await session.commit()
            except (ProtocolError, SimTimeoutError):
                self.core_aborts += 1
                return False
            if result.committed:
                self.core_commits += 1
                if result.fast_path:
                    self.core_fast_commits += 1
                return True
            self.core_aborts += 1
        return False
