"""Geo run descriptions and region-per-partition plans.

A :class:`GeoSpec` is the picklable "geo flavour" attached to a
:class:`repro.parallel.models.ModelSpec`: topology, serving mode, user
population and edge-tier knobs.  :func:`geo_plan` maps a geo deployment
onto partitions **one region per partition**: a region's replicas, edge
proxy, and users all share a partition, so every cross-partition message
is by construction a cross-region message and the conservative lookahead
is the *minimum cross-region base latency* of the matrix — typically
three orders of magnitude wider than the single-link 75 µs bound, i.e.
~500x fewer windows for the same simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.geo.latency import GeoPlacement
from repro.geo.topology import GeoTopology
from repro.parallel.partition import PartitionPlan

#: Serving modes the runner understands.
MODES = ("edge", "direct")


@dataclass(frozen=True)
class GeoSpec:
    """Picklable description of one geo-distributed serving experiment."""

    topology: GeoTopology
    #: ``edge`` — users talk to their region's EdgeProxy (lease reads,
    #: write-back batches); ``direct`` — users are Basil clients issuing
    #: quorum reads and 2PC commits straight at the core.
    mode: str = "edge"
    users_per_region: int = 4
    #: Geo key population (keys ``geo/0 .. geo/{keys-1}``, genesis 0).
    #: Kept hot by default: interactive serving reads concentrate on a
    #: small working set, which is what a lease cache exists to exploit.
    keys: int = 24
    read_fraction: float = 0.9
    #: Read-lease TTL at the proxy, simulated seconds (the bounded
    #: staleness the edge trade-off accepts).
    lease_ttl: float = 2.0
    #: Write-back batch flush cadence / max batch size.
    flush_interval: float = 0.02
    flush_max: int = 8
    #: Closed-loop think time between user operations.
    think_time: float = 0.005

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise SimulationError(
                f"unknown geo mode {self.mode!r} (one of {', '.join(MODES)})"
            )
        if self.users_per_region < 1:
            raise SimulationError("geo runs need at least one user per region")
        if self.keys < 1:
            raise SimulationError("geo runs need at least one key")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise SimulationError("read_fraction must be within [0, 1]")

    def placement(self, config) -> GeoPlacement:
        return GeoPlacement(
            self.topology, config, users_per_region=self.users_per_region,
            mode=self.mode,
        )


def derive_lookahead(topology: GeoTopology) -> float:
    """Lookahead from the minimum cross-region entry of the latency matrix.

    Jitter only ever adds delay, so no cross-region delivery can undercut
    the fastest pair's base.  Raises a :class:`SimulationError` naming
    the offending region pair when that minimum cannot bound a window.
    """
    fastest = topology.min_cross_region()
    if fastest.base <= 0.0:
        raise SimulationError(
            f"region pair {fastest.a} <-> {fastest.b} has a zero base "
            f"latency: the latency matrix of {topology.name!r} admits "
            f"instantaneous cross-region delivery, so no positive "
            f"cross-partition lookahead can be derived from it"
        )
    return fastest.base


def geo_plan(config, geo: GeoSpec) -> PartitionPlan:
    """Region-per-partition plan with matrix-derived lookahead.

    Partition ``r`` hosts everything placed in region ``r``; per-pair
    floors record each region pair's base latency so a partitioned run
    can detect (and name) the pair any under-lookahead delivery crossed.
    """
    topology = geo.topology
    if len(topology.regions) < 2:
        raise SimulationError(
            f"topology {topology.name!r} has a single region; a geo plan "
            f"needs at least two partitions"
        )
    placement = geo.placement(config)
    index = {region: pid for pid, region in enumerate(topology.regions)}
    assignment = tuple(
        (name, index[placement.region_of(name)]) for name in placement.roster()
    )
    pair_floors = tuple(
        (index[link.a], index[link.b], link.base)
        for link in topology.cross_region_links()
    )
    return PartitionPlan(
        num_partitions=len(topology.regions),
        lookahead=derive_lookahead(topology),
        assignment=assignment,
        roster_names=tuple(name for name, _ in assignment),
        default_partition=0,
        label=f"geo/{topology.name}/{geo.mode}",
        partition_labels=topology.regions,
        pair_floors=pair_floors,
    )
