"""CLI: ``python -m repro.geo sweep|run|topo``.

* ``sweep`` — the geo serving experiment: every requested topology x
  serving mode (edge vs direct), each under the parallel runtime
  (``--workers``, region-per-partition), printing a per-region end-user
  latency table and the edge-vs-direct comparison against each
  topology's fastest cross-region RTT.  ``--bench BENCH.json`` appends
  ``geo-{topology}-{mode}`` rows via the merging baseline writer;
  ``--obs DIR`` writes one merged RunReport per point.
* ``run`` — one topology x mode point, full bench row + region table.
* ``topo`` — print a topology's regions and latency matrix (or its
  JSON, for editing into a custom matrix file).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.geo.plan import MODES, GeoSpec, derive_lookahead
from repro.geo.topology import TOPOLOGIES, get_topology


def _spec(args: argparse.Namespace) -> "ModelSpec":
    from repro.config import SystemConfig
    from repro.parallel.models import ModelSpec

    topology = get_topology(args.topology)
    schedule = None
    if getattr(args, "faults", None):
        from repro.faults.spec import FaultSchedule

        with open(args.faults) as fh:
            schedule = FaultSchedule.from_json(fh.read())
    geo = GeoSpec(
        topology=topology,
        mode=args.mode,
        users_per_region=args.users,
        keys=args.keys,
        read_fraction=args.read_fraction,
        lease_ttl=args.lease_ttl,
    )
    return ModelSpec(
        kind="basil",
        config=SystemConfig(num_shards=args.shards, seed=args.seed),
        geo=geo,
        duration=args.duration,
        warmup=args.warmup,
        label=f"geo-{topology.name}-{args.mode}",
        obs=bool(getattr(args, "obs", None)),
        fault_schedule=schedule,
    )


def _run_point(spec, workers: int):
    from repro.parallel.runtime import ParallelRunner

    return ParallelRunner(spec, workers=workers).run()


def _print_regions(geo_extra: dict) -> None:
    print(f"    {'region':<12} {'reads':>6} {'writes':>7} "
          f"{'read p50':>9} {'read p99':>9} {'write p50':>10} {'hit rate':>9}")
    for region, row in geo_extra["regions"].items():
        hit = row.get("lease_hit_rate")
        print(
            f"    {region:<12} {row['reads']:>6} {row['writes']:>7} "
            f"{row['read_p50'] * 1000:>7.2f}ms {row['read_p99'] * 1000:>7.2f}ms "
            f"{row['write_p50'] * 1000:>8.2f}ms "
            f"{(f'{hit * 100:7.1f}%' if hit is not None else '      —'):>9}"
        )


def _report_point(result, spec) -> dict:
    bench = result.bench
    g = bench["extra"]["geo"]
    rtt = g["cross_region_rtt"]
    print(
        f"  {bench['name']:<22} ops {g['ops']:>5}  "
        f"read p50 {g['read_p50'] * 1000:7.2f} ms  "
        f"write p50 {g['write_p50'] * 1000:7.2f} ms  "
        f"commits {bench['commits']:>4}  "
        f"(min cross RTT {rtt * 1000:.0f} ms, windows {result.windows})"
    )
    _print_regions(g)
    return {
        "bench": bench["name"],
        "wall_s": result.wall_s,
        "events_per_s": result.events_per_s,
        "mode": g["mode"],
        "read_p50": g["read_p50"],
        "write_p50": g["write_p50"],
        "cross_region_rtt": rtt,
        "ops": g["ops"],
    }


def _write_obs(result, spec, out_dir: str) -> None:
    if result.report is None:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, spec.artifact_stem() + ".obs.json")
    with open(path, "w") as fh:
        json.dump(result.report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"    wrote merged obs report to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.geo")
    sub = parser.add_subparsers(dest="cmd", required=True)

    def common(p):
        p.add_argument("--workers", type=int, default=1)
        p.add_argument("--shards", type=int, default=1)
        p.add_argument("--users", type=int, default=4,
                       help="end users per region")
        p.add_argument("--keys", type=int, default=24)
        p.add_argument("--read-fraction", type=float, default=0.9)
        p.add_argument("--lease-ttl", type=float, default=2.0)
        p.add_argument("--duration", type=float, default=0.6)
        p.add_argument("--warmup", type=float, default=0.15)
        p.add_argument("--seed", type=int, default=2024)
        p.add_argument("--obs", default=None, metavar="DIR",
                       help="write merged RunReports into this directory")
        p.add_argument("--faults", default=None, metavar="SCHEDULE.json",
                       help="apply a FaultSchedule (e.g. a region blackout)")

    sweep = sub.add_parser(
        "sweep", help="edge vs direct serving across topologies"
    )
    sweep.add_argument("--topologies", nargs="+", default=["wan3"],
                       help=f"presets ({', '.join(sorted(TOPOLOGIES))}) or "
                       f"paths to topology JSON files")
    sweep.add_argument("--modes", nargs="+", default=list(MODES),
                       choices=list(MODES))
    sweep.add_argument("--bench", default=None, metavar="BENCH.json",
                       help="merge geo-* rows into this baseline file")
    common(sweep)

    run_p = sub.add_parser("run", help="one topology x mode point")
    run_p.add_argument("--topology", default="wan3")
    run_p.add_argument("--mode", default="edge", choices=list(MODES))
    common(run_p)

    topo = sub.add_parser("topo", help="print a topology's latency matrix")
    topo.add_argument("name", nargs="?", default="wan3")
    topo.add_argument("--json", action="store_true",
                      help="emit the topology as JSON (editable template)")

    args = parser.parse_args(argv)

    if args.cmd == "topo":
        topology = get_topology(args.name)
        if args.json:
            print(topology.to_json())
            return 0
        print(f"topology {topology.name}: {len(topology.regions)} regions, "
              f"lookahead {derive_lookahead(topology) * 1000:.0f} ms")
        width = max(len(r) for r in topology.regions) + 2
        print(" " * width + "".join(f"{r:>{width}}" for r in topology.regions))
        for a in topology.regions:
            cells = []
            for b in topology.regions:
                base, jitter = topology.latency(a, b)
                cells.append(f"{base * 1000:.1f}+{jitter * 1000:.0f}ms".rjust(width))
            print(f"{a:>{width}}" + "".join(cells))
        return 0

    if args.cmd == "run":
        spec = _spec(args)
        result = _run_point(spec, args.workers)
        _report_point(result, spec)
        if args.obs:
            _write_obs(result, spec, args.obs)
        return 0

    # sweep
    from repro.parallel.__main__ import merge_bench_rows

    bench_rows = []
    for name in args.topologies:
        topology = get_topology(name)
        print(
            f"{topology.name}: {len(topology.regions)} regions, min cross RTT "
            f"{2 * derive_lookahead(topology) * 1000:.0f} ms, "
            f"workers={args.workers}"
        )
        per_mode = {}
        for mode in args.modes:
            point = argparse.Namespace(**vars(args), topology=name, mode=mode)
            spec = _spec(point)
            result = _run_point(spec, args.workers)
            per_mode[mode] = row = _report_point(result, spec)
            bench_rows.append(row)
            if args.obs:
                _write_obs(result, spec, args.obs)
        if "edge" in per_mode and "direct" in per_mode:
            edge, direct = per_mode["edge"], per_mode["direct"]
            rtt = edge["cross_region_rtt"]
            speedup = (
                direct["read_p50"] / edge["read_p50"]
                if edge["read_p50"] else float("inf")
            )
            print(
                f"  => edge read p50 {edge['read_p50'] * 1000:.2f} ms vs "
                f"direct {direct['read_p50'] * 1000:.2f} ms "
                f"({speedup:,.0f}x; one cross-region RTT = {rtt * 1000:.0f} ms)"
            )
    if args.bench and bench_rows:
        merge_bench_rows(
            args.bench,
            [{"bench": r["bench"], "wall_s": r["wall_s"],
              "events_per_s": r["events_per_s"]} for r in bench_rows],
        )
        print(f"merged {len(bench_rows)} geo rows into {args.bench}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
