"""Build and drive one geo-distributed serving experiment.

:func:`build_geo_system` wires a :class:`~repro.core.system.BasilSystem`
whose network samples latency from the topology's region matrix
(:class:`~repro.geo.latency.RegionLatencyModel`) and whose replicas know
their hosting region.  :class:`GeoRunner` then stands up the serving
tier — per-region :class:`~repro.geo.edge.EdgeProxy` + users in ``edge``
mode, per-region :class:`~repro.geo.edge.DirectUser` Basil clients in
``direct`` mode — runs the closed loop, and reports *end-user* latency
measured at the session boundary, per region, next to the core's commit
statistics.  That separation is the point of the experiment: the edge
tier's lease/write-back decoupling keeps the end-user path regional
while consensus still pays WAN quorum latency underneath.

``GeoRunner`` mirrors :class:`repro.bench.runner.ExperimentRunner`'s
lifecycle (``setup()`` schedules everything without executing an event;
``finalize()`` summarizes) so the parallel partition hosts can drive
either interchangeably.  Under :class:`repro.parallel.ParallelRunner`
each partition is one region (see :func:`repro.geo.plan.geo_plan`);
``merge_geo_benches`` unions the per-region rows back into one bench.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bench.runner import BenchResult
from repro.errors import SimulationError
from repro.geo.edge import DirectUser, EdgeProxy, EdgeUser, RegionStats, percentile
from repro.geo.latency import RegionLatencyModel, user_name
from repro.geo.obs import edge_probe, geo_health_rules
from repro.geo.plan import GeoSpec
from repro.workloads.geo import GeoSessionWorkload


def wan_timeouts(config: Any, topology: Any) -> Any:
    """Raise the client timeout knobs to WAN scale for ``topology``.

    The defaults are calibrated for a 0.15 ms-ping datacenter; on a WAN
    matrix they fire long before a cross-region round trip completes, so
    every prepare "starves" at 8 x 5 ms and every read is resolved by a
    timeout-driven rebroadcast to the sender's local replicas — masking
    the very latency the experiment measures.  Each knob is raised (never
    lowered) to a multiple of the topology's worst cross-region RTT.
    """
    rtt = 2.0 * max(
        link.base + link.jitter for link in topology.cross_region_links()
    )
    return config.with_overrides(
        request_timeout=max(config.request_timeout, 2.5 * rtt),
        dependency_timeout=max(config.dependency_timeout, 1.5 * rtt),
        fallback_view_timeout=max(config.fallback_view_timeout, 2.0 * rtt),
        retry_backoff_max=max(config.retry_backoff_max, rtt),
    )


def build_geo_system(config: Any, geo: GeoSpec, partition: Any = None) -> Any:
    """A Basil deployment on ``geo``'s topology (optionally one slice).

    Replicas carry their hosting region (``replica.region``) so the
    core's churn metrics come out region-labeled, and the network's
    latency model resolves every (src, dst) pair through the placement.
    Client timeouts are raised to WAN scale via :func:`wan_timeouts`.
    """
    from repro.core.system import BasilSystem

    config = wan_timeouts(config, geo.topology)
    placement = geo.placement(config)
    model = RegionLatencyModel(geo.topology, placement)
    system = BasilSystem(config, partition=partition, latency=model)
    for name, replica in system.replicas.items():
        replica.region = placement.region_of(name)
    return system


#: Client-id block per region: region ``i`` owns ids ``1000*(i+1) ...``.
#: Blocks keep client ids (which salt Basil timestamps) unique across
#: regions even when each partition constructs only its own region.
_REGION_ID_BLOCK = 1000


class GeoRunner:
    """Closed-loop geo serving experiment over one (slice of a) system.

    ``regions`` restricts the serving tier to a subset (a partitioned
    run passes its own region); core replicas are whatever ``system``
    hosts.  ``keep_samples`` retains raw per-region latency samples in
    the bench row's ``extra`` so cross-partition merges can recompute
    exact percentiles (dropped again by :func:`merge_geo_benches`).
    """

    def __init__(
        self,
        system: Any,
        geo: GeoSpec,
        duration: float = 0.3,
        warmup: float = 0.05,
        name: str = "",
        recorder: Any = None,
        injector: Any = None,
        regions: Sequence[str] | None = None,
        keep_samples: bool = False,
    ) -> None:
        self.system = system
        self.geo = geo
        topology = geo.topology
        if regions is None:
            self.regions = topology.regions
        else:
            unknown = set(regions) - set(topology.regions)
            if unknown:
                raise SimulationError(
                    f"unknown regions {sorted(unknown)} on topology "
                    f"{topology.name!r}"
                )
            wanted = set(regions)
            self.regions = tuple(r for r in topology.regions if r in wanted)
        self.duration = duration
        self.warmup = warmup
        self.name = name or f"geo-{topology.name}-{geo.mode}"
        self.recorder = recorder
        self.injector = injector
        self.keep_samples = keep_samples
        self.workload = GeoSessionWorkload(
            num_keys=geo.keys, read_fraction=geo.read_fraction
        )
        self.end_time = warmup + duration + warmup  # + cool-down
        self.proxies: dict[str, EdgeProxy] = {}
        self.users: dict[str, list[Any]] = {}
        self.stats: dict[str, RegionStats] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def setup(self) -> float:
        """Wire faults, genesis data, serving tier, telemetry; no events run.

        Same relative order as ``ExperimentRunner.setup``: injector before
        genesis load, recorder last.  Returns the run's end time.
        """
        from repro.core.system import CLOCK_EPOCH

        system, geo = self.system, self.geo
        sim, config = system.sim, system.config
        if self.injector is not None:
            self.injector.attach(system)
        system.load(self.workload.iter_data())
        window_end = self.warmup + self.duration
        skew_rng = sim.rng("clock-skew")
        for region in self.regions:
            base_id = _REGION_ID_BLOCK * (geo.topology.region_index(region) + 1)
            stats = self.stats[region] = RegionStats(region, self.warmup, window_end)
            members: list[Any] = []
            if geo.mode == "edge":
                proxy = EdgeProxy(
                    sim, base_id, system.network, config, system.sharder,
                    system.registry, region=region, lease_ttl=geo.lease_ttl,
                    flush_interval=geo.flush_interval, flush_max=geo.flush_max,
                )
                proxy.clock_offset = CLOCK_EPOCH + skew_rng.uniform(
                    -config.clock_skew, config.clock_skew
                )
                self._adopt(proxy)
                proxy.start()
                self.proxies[region] = proxy
                for i in range(geo.users_per_region):
                    user = EdgeUser(
                        sim, user_name(region, i), system.network, config,
                        region=region, proxy=proxy.name, workload=self.workload,
                        rng=sim.rng(f"geo-user/{region}/{i}"), stats=stats,
                        stop_issuing=window_end, end_time=self.end_time,
                        think_time=geo.think_time,
                    )
                    self._adopt(user)
                    user.start()
                    members.append(user)
            else:
                for i in range(geo.users_per_region):
                    user = DirectUser(
                        sim, base_id + 1 + i, system.network, config,
                        system.sharder, system.registry, region=region,
                        index=i, workload=self.workload,
                        rng=sim.rng(f"geo-user/{region}/{i}"), stats=stats,
                        stop_issuing=window_end, end_time=self.end_time,
                        think_time=geo.think_time,
                    )
                    user.clock_offset = CLOCK_EPOCH + skew_rng.uniform(
                        -config.clock_skew, config.clock_skew
                    )
                    self._adopt(user)
                    user.start()
                    members.append(user)
            self.users[region] = members
        if self.recorder is not None:
            self.recorder.rules = list(self.recorder.rules) + geo_health_rules(
                self.regions
            )
            if self.proxies:
                self.recorder.ticker.add_probe(edge_probe(self.proxies))
            self.recorder.attach(system, until=self.end_time)
        return self.end_time

    def _adopt(self, node: Any) -> None:
        """Register a serving-tier node on the (possibly sliced) network."""
        if self.system.partition is not None:
            node.partition_id = self.system.partition.partition_id
        self.system.network.register(node)

    # ------------------------------------------------------------------
    # Execution + results
    # ------------------------------------------------------------------
    def run(self) -> BenchResult:
        """Sequential convenience: setup, advance to the end, summarize."""
        end = self.setup()
        self.system.sim.run(until=end)
        return self.finalize()

    def finalize(self) -> BenchResult:
        geo, topology = self.geo, self.geo.topology
        per_region: dict[str, dict[str, Any]] = {}
        read_samples: list[float] = []
        write_samples: list[float] = []
        commits = aborts = fast = failures = 0
        for region in self.regions:
            stats = self.stats[region]
            row = stats.summary()
            proxy = self.proxies.get(region)
            members = list(self.users[region])
            if proxy is not None:
                members.append(proxy)
                looked = proxy.lease_hits + proxy.lease_misses
                row["lease_hits"] = proxy.lease_hits
                row["lease_misses"] = proxy.lease_misses
                row["lease_hit_rate"] = proxy.lease_hits / looked if looked else 0.0
                row["writebacks"] = proxy.writebacks
                row["writeback_commits"] = proxy.writeback_commits
                row["writeback_aborts"] = proxy.writeback_aborts
            row["read_failures"] = sum(
                getattr(n, "read_failures", 0) for n in members
            )
            commits += sum(getattr(n, "core_commits", 0) for n in members)
            fast += sum(getattr(n, "core_fast_commits", 0) for n in members)
            aborts += sum(getattr(n, "core_aborts", 0) for n in members)
            failures += stats.failures
            read_samples.extend(stats.reads)
            write_samples.extend(stats.writes)
            per_region[region] = row
        all_samples = read_samples + write_samples
        ops = len(all_samples)
        fastest = topology.min_cross_region()
        extra_geo: dict[str, Any] = {
            "topology": topology.name,
            "mode": geo.mode,
            "regions": per_region,
            "min_cross_region_base": fastest.base,
            "cross_region_rtt": 2.0 * fastest.base,
            "ops": ops,
            "failures": failures,
            "read_p50": percentile(read_samples, 0.50),
            "read_p99": percentile(read_samples, 0.99),
            "write_p50": percentile(write_samples, 0.50),
            "write_p99": percentile(write_samples, 0.99),
        }
        if self.keep_samples:
            extra_geo["samples"] = {
                region: {
                    "reads": list(self.stats[region].reads),
                    "writes": list(self.stats[region].writes),
                }
                for region in self.regions
            }
        attempts = commits + aborts
        return BenchResult(
            name=self.name,
            throughput=ops / self.duration if self.duration else 0.0,
            mean_latency=sum(all_samples) / ops if ops else 0.0,
            p99_latency=percentile(all_samples, 0.99),
            commit_rate=commits / attempts if attempts else 1.0,
            fast_path_rate=fast / commits if commits else 0.0,
            commits=commits,
            aborts=aborts,
            duration=self.duration,
            dropped=getattr(self.system.network, "messages_dropped", 0),
            extra={"geo": extra_geo},
        )


def merge_geo_benches(rows: Sequence[dict[str, Any]]) -> dict[str, Any] | None:
    """Union per-partition geo bench rows (dict form) into one bench.

    Region tables union (each region is measured on exactly one
    partition); overall latency percentiles are recomputed from the
    retained raw samples, which are then dropped from the merged row.
    """
    rows = [r for r in rows if r]
    if not rows:
        return None
    read_samples: list[float] = []
    write_samples: list[float] = []
    regions: dict[str, dict[str, Any]] = {}
    commits = aborts = failures = ops = 0
    fast_commits = 0.0
    for row in rows:
        g = dict((row.get("extra") or {}).get("geo") or {})
        regions.update(g.get("regions") or {})
        for sample in (g.get("samples") or {}).values():
            read_samples.extend(sample.get("reads", ()))
            write_samples.extend(sample.get("writes", ()))
        failures += int(g.get("failures", 0))
        commits += int(row.get("commits", 0))
        aborts += int(row.get("aborts", 0))
        fast_commits += row.get("fast_path_rate", 0.0) * row.get("commits", 0)
    all_samples = read_samples + write_samples
    ops = len(all_samples)
    merged = dict(rows[0])
    duration = float(merged.get("duration") or 0.0)
    attempts = commits + aborts
    merged["throughput"] = ops / duration if duration else 0.0
    merged["mean_latency"] = sum(all_samples) / ops if ops else 0.0
    merged["p99_latency"] = percentile(all_samples, 0.99)
    merged["commit_rate"] = commits / attempts if attempts else 1.0
    merged["fast_path_rate"] = fast_commits / commits if commits else 0.0
    merged["commits"] = commits
    merged["aborts"] = aborts
    extra = dict(merged.get("extra") or {})
    geo = dict(extra.get("geo") or {})
    geo.pop("samples", None)
    geo["regions"] = regions
    geo["ops"] = ops
    geo["failures"] = failures
    geo["read_p50"] = percentile(read_samples, 0.50)
    geo["read_p99"] = percentile(read_samples, 0.99)
    geo["write_p50"] = percentile(write_samples, 0.50)
    geo["write_p99"] = percentile(write_samples, 0.99)
    extra["geo"] = geo
    merged["extra"] = extra
    return merged
