"""Region-correlated fault specs layered on the repro.faults schedule.

WAN failures are correlated by geography: a subsea-cable cut or a
regional cloud outage takes out *every* node a region hosts at once, not
an arbitrary replica subset.  These builders resolve a region through a
:class:`~repro.geo.latency.GeoPlacement` into the explicit node names it
hosts (exact names are valid fnmatch patterns) and compose the standard
:mod:`repro.faults.spec` primitives, so geo fault schedules serialize,
replay, and inject exactly like any other schedule — including under
:class:`repro.parallel.ParallelRunner`, where each partition applies the
sending side of the same serialized schedule.
"""

from __future__ import annotations

from repro.faults.spec import Fault, FaultSchedule, LinkFault, PartitionFault
from repro.geo.latency import GeoPlacement


def region_blackout(
    placement: GeoPlacement, region: str, start: float, end: float | None
) -> PartitionFault:
    """Partition every node hosted in ``region`` away from everyone else.

    Replicas, the edge proxy, and users of the region land in one
    partition group; the wildcard group holds the rest of the world.
    Intra-region traffic keeps flowing (the region is alive, just cut
    off), which is exactly the regime the edge tier's lease cache is
    supposed to ride out.
    """
    return PartitionFault(
        groups=(placement.nodes_in(region), ("*",)),
        start=start,
        end=end,
    )


def region_isolation(
    placement: GeoPlacement, region_a: str, region_b: str,
    start: float, end: float | None,
) -> tuple[LinkFault, ...]:
    """Cut only the ``region_a <-> region_b`` links, both directions.

    Models a single inter-region route failure: both regions stay
    reachable from everywhere else, so quorums re-form around the cut.
    """
    faults = []
    for src_region, dst_region in ((region_a, region_b), (region_b, region_a)):
        for src in placement.nodes_in(src_region):
            for dst in placement.nodes_in(dst_region):
                faults.append(
                    LinkFault(src=src, dst=dst, start=start, end=end, drop_rate=1.0)
                )
    return tuple(faults)


def region_slowdown(
    placement: GeoPlacement, region: str, start: float, end: float | None,
    extra_delay: float, delay_jitter: float = 0.0,
) -> tuple[LinkFault, ...]:
    """Add ``extra_delay`` to every message leaving ``region``.

    A brown-out rather than a blackout: congestion on the region's
    egress.  Only the outbound side is degraded so the asymmetry is
    visible in per-region latency series.
    """
    return tuple(
        LinkFault(
            src=src, dst="*", start=start, end=end,
            extra_delay=extra_delay, delay_jitter=delay_jitter,
        )
        for src in placement.nodes_in(region)
    )


def region_fault_schedule(name: str, faults: tuple[Fault, ...]) -> FaultSchedule:
    """Wrap region faults in a named, serializable schedule."""
    return FaultSchedule(name=name, faults=tuple(faults))
