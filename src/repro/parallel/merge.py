"""Deterministic merging of per-partition results.

Each partition produces its own trace digest, event count, and metric
series; these helpers fold them into one run-level artifact in an order
that depends only on partition ids — never on worker packing or message
arrival order.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Iterable, Iterator


def combine_digests(digests: dict[int, str]) -> str:
    """Fold per-partition digests into one run digest.

    sha256 over ``"pid:digest"`` lines in partition-id order: equal
    per-partition schedules <=> equal combined digest, for any worker
    count.
    """
    h = hashlib.sha256()
    for pid in sorted(digests):
        h.update(f"{pid}:{digests[pid]}\n".encode())
    return h.hexdigest()


def merge_event_streams(
    streams: dict[int, Iterable[tuple[float, int, Any]]],
) -> Iterator[tuple[float, int, int, Any]]:
    """K-way merge of per-partition event streams into one total order.

    Each stream yields ``(time, seq, item)`` tuples already ordered
    within its partition; the merged order is ``(time, partition_id,
    seq)`` — the same tie-break the exchange uses for envelopes, so a
    merged timeline built from partitioned runs is stable run-to-run.
    Yields ``(time, partition_id, seq, item)``.
    """
    def keyed(pid: int, stream: Iterable[tuple[float, int, Any]]):
        for ts, seq, item in stream:
            yield ts, pid, seq, item

    yield from heapq.merge(
        *(keyed(pid, stream) for pid, stream in sorted(streams.items()))
    )


def merge_partition_reports(
    reports: dict[int, dict[str, Any]],
    name: str,
    bench: dict[str, Any] | None = None,
    trace_digest: str | None = None,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Fold per-partition obs ``RunReport`` dicts into one run report.

    Series and histograms are tagged with their partition so nothing is
    lost in the merge; health is the worst across partitions; verdicts
    concatenate in partition order.  The result is a plain
    ``repro.obs.run/v1`` dict (round-trippable through
    ``RunReport.from_dict``).
    """
    if not reports:
        raise ValueError("no partition reports to merge")
    order = {"ok": 0, "warn": 1, "fail": 2}
    base = reports[min(reports)]
    merged: dict[str, Any] = dict(base)
    merged["name"] = name
    merged["sim_seconds"] = max(r.get("sim_seconds", 0.0) for r in reports.values())
    merged["health"] = max(
        (r.get("health", "ok") for r in reports.values()),
        key=lambda h: order.get(h, 2),
    )
    verdicts: list[dict[str, Any]] = []
    series: list[dict[str, Any]] = []
    histograms: dict[str, Any] = {}
    for pid in sorted(reports):
        report = reports[pid]
        tag = f"p{pid}"
        for verdict in report.get("verdicts", []):
            verdicts.append({**verdict, "partition": pid})
        for entry in report.get("series", []):
            labels = dict(entry.get("labels") or {})
            labels["partition"] = tag
            series.append({**entry, "labels": labels})
        for key, summary in (report.get("histograms") or {}).items():
            histograms[f"{tag}/{key}"] = summary
    merged["verdicts"] = verdicts
    merged["series"] = series
    merged["histograms"] = histograms
    if bench is not None:
        merged["bench"] = bench
    if trace_digest is not None:
        merged["trace_digest"] = trace_digest
    merged_meta = dict(base.get("meta") or {})
    merged_meta["partitions"] = sorted(reports)
    merged_meta.update(meta or {})
    merged["meta"] = merged_meta
    return merged
