"""Space-parallel simulation: partitioned DES with deterministic merge.

The sequential kernel (:mod:`repro.sim.loop`) runs a whole deployment on
one event heap.  This package splits the node graph into *logical
partitions* (by shard, plus one partition for all clients), runs each
partition as its own :class:`~repro.sim.loop.Simulator`, and advances
them in conservative lookahead windows: no partition may execute past
the current window boundary until every cross-partition message bound
for that window has been exchanged.  The lookahead equals the minimum
one-way cross-partition network latency, so a message sent inside a
window can never be due for delivery inside the same window — the
windowed barrier exchange is always conservative.

Determinism contract (see docs/parallel.md):

* The partition count is a function of the *topology*, never of the
  worker count.  Workers merely host one or more partitions, so a run
  with ``workers=2`` and one with ``workers=4`` execute byte-identical
  per-partition schedules and produce identical trace digests.
* ``workers=1`` does not window at all: it delegates to the sequential
  kernel and is byte-identical (same trace digest) to a plain
  sequential run.
* Inbound cross-partition messages are merged in the stable order
  ``(deliver_time, src_partition, seq)`` before scheduling.
* Every named RNG stream is derived from ``(seed, partition_id,
  stream)``; :func:`~repro.parallel.partition.audit_rng_streams`
  asserts no two partitions ever share a stream.
"""

from repro.parallel.exchange import Envelope, envelope_order, window_count
from repro.parallel.merge import combine_digests, merge_event_streams
from repro.parallel.models import ModelSpec, make_plan
from repro.parallel.partition import PartitionPlan, PlanSlice, audit_rng_streams
from repro.parallel.runtime import ParallelResult, ParallelRunner

__all__ = [
    "Envelope",
    "ModelSpec",
    "ParallelResult",
    "ParallelRunner",
    "PartitionPlan",
    "PlanSlice",
    "audit_rng_streams",
    "combine_digests",
    "envelope_order",
    "make_plan",
    "merge_event_streams",
    "window_count",
]
