"""Partition plans: how a node graph maps onto logical partitions.

A :class:`PartitionPlan` is a pure, picklable description — it decides
*where every node lives* and what the conservative lookahead is, and it
is the only thing workers and the coordinator must agree on.  Plans are
functions of the topology alone (never of the worker count), which is
what makes trace digests invariant across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import SimulationError


@dataclass(frozen=True)
class PartitionPlan:
    """Placement of every node onto ``num_partitions`` logical partitions.

    ``assignment`` pins named nodes to partitions; any name not pinned
    falls through to ``default_partition`` (Basil uses this for clients,
    which are created dynamically as ``client/{id}``).  ``roster`` is
    the full set of node names in the deployment — every partition
    pre-issues signing keys for all of them so cross-partition
    signatures verify.
    """

    num_partitions: int
    lookahead: float
    assignment: tuple[tuple[str, int], ...] = ()
    roster_names: tuple[str, ...] = ()
    default_partition: int = 0
    label: str = "plan"
    #: Human-readable name per partition (e.g. the hosting region in a
    #: geo plan); empty means partitions are anonymous.
    partition_labels: tuple[str, ...] = ()
    #: Per-partition-pair delivery floors as ``(p, q, floor)`` triples
    #: (symmetric; derived from a latency matrix in geo plans).  The
    #: global ``lookahead`` must not exceed any pair's floor — a window
    #: wider than the fastest inter-partition link would let a message
    #: land in a window its destination already executed.
    pair_floors: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.num_partitions < 1:
            raise SimulationError("plan needs at least one partition")
        if self.lookahead <= 0.0:
            raise SimulationError("lookahead must be positive")
        for name, pid in self.assignment:
            if not 0 <= pid < self.num_partitions:
                raise SimulationError(f"{name!r} assigned to bad partition {pid}")
        if self.partition_labels and len(self.partition_labels) != self.num_partitions:
            raise SimulationError(
                f"{len(self.partition_labels)} partition labels for "
                f"{self.num_partitions} partitions"
            )
        for p, q, floor in self.pair_floors:
            if floor < self.lookahead:
                raise SimulationError(
                    f"lookahead {self.lookahead:g}s exceeds the "
                    f"{self.partition_label(p)} <-> {self.partition_label(q)} "
                    f"latency floor {floor:g}s; derive the lookahead from the "
                    f"minimum entry of the latency matrix"
                )

    def partition_label(self, pid: int) -> str:
        """Display name of partition ``pid`` (region name in geo plans)."""
        if self.partition_labels and 0 <= pid < len(self.partition_labels):
            return self.partition_labels[pid]
        return f"p{pid}"

    def pair_floor(self, p: int, q: int) -> float:
        """Delivery floor between partitions ``p`` and ``q`` (symmetric).

        Falls back to the global lookahead when no per-pair floor is
        recorded (uniform-latency plans).
        """
        floors = self.__dict__.get("_pair_floor_memo")
        if floors is None:
            floors = {}
            for a, b, floor in self.pair_floors:
                floors[(a, b)] = floor
                floors[(b, a)] = floor
            object.__setattr__(self, "_pair_floor_memo", floors)
        return floors.get((p, q), self.lookahead)

    @property
    def _index(self) -> dict[str, int]:
        index = self.__dict__.get("_index_memo")
        if index is None:
            index = dict(self.assignment)
            object.__setattr__(self, "_index_memo", index)
        return index

    def partition_of(self, name: str) -> int:
        return self._index.get(name, self.default_partition)

    def roster(self) -> tuple[str, ...]:
        return self.roster_names

    def slice(self, partition_id: int) -> "PlanSlice":
        if not 0 <= partition_id < self.num_partitions:
            raise SimulationError(f"no partition {partition_id} in this plan")
        return PlanSlice(plan=self, partition_id=partition_id)

    def assign_workers(self, num_workers: int) -> list[tuple[int, ...]]:
        """Round-robin partitions onto workers; worker i gets i, i+N, ...

        Purely a *hosting* decision: each partition runs on its own
        simulator regardless, so this mapping cannot affect schedules.
        """
        if num_workers < 1:
            raise SimulationError("need at least one worker")
        num_workers = min(num_workers, self.num_partitions)
        owned: list[list[int]] = [[] for _ in range(num_workers)]
        for pid in range(self.num_partitions):
            owned[pid % num_workers].append(pid)
        return [tuple(pids) for pids in owned]


@dataclass(frozen=True)
class PlanSlice:
    """One partition's view of a plan — the ``partition`` argument the
    partition-aware system builders (e.g. ``BasilSystem``) accept."""

    plan: PartitionPlan
    partition_id: int

    def partition_of(self, name: str) -> int:
        return self.plan.partition_of(name)

    def roster(self) -> tuple[str, ...]:
        return self.plan.roster()


def basil_plan(config: Any, num_clients: int) -> PartitionPlan:
    """Shard-per-partition placement for a Basil deployment.

    Partition ``s`` hosts shard ``s``'s ``5f+1`` replicas; the last
    partition hosts every client (clients talk to all shards, so giving
    them their own partition keeps each replica partition's inbound
    traffic shard-local).  Lookahead is the *base* one-way latency:
    jitter only ever adds delay, so no delivery can undercut it.
    """
    from repro.core.sharding import Sharder

    sharder = Sharder(config)
    num_partitions = config.num_shards + 1
    client_pid = config.num_shards
    assignment = tuple(
        (name, sharder.shard_of_replica(name)) for name in sharder.all_replicas()
    )
    clients = tuple(f"client/{i}" for i in range(1, num_clients + 1))
    return PartitionPlan(
        num_partitions=num_partitions,
        lookahead=config.network.one_way_latency,
        assignment=assignment,
        roster_names=tuple(name for name, _ in assignment) + clients,
        default_partition=client_pid,
        label=f"basil/{config.num_shards}shards+clients",
    )


def uniform_plan(num_partitions: int, lookahead: float) -> PartitionPlan:
    """A plan of anonymous partitions (the kernel microbenchmark)."""
    return PartitionPlan(
        num_partitions=num_partitions,
        lookahead=lookahead,
        label=f"uniform/{num_partitions}",
    )


def audit_rng_streams(
    seed: int, streams_by_partition: dict[int, dict[str, str]]
) -> None:
    """Assert the RNG namespace discipline held for a whole run.

    ``streams_by_partition`` maps partition id to that simulator's
    ``rng_streams()`` (stream name -> full derivation key).  Raises
    :class:`SimulationError` if any stream was derived outside its
    partition's ``(seed, partition_id)`` namespace, or if any two
    partitions derived the same key (which would mean two partitions
    observed identical draw sequences).
    """
    seen: dict[str, int] = {}
    for pid, streams in streams_by_partition.items():
        prefix = f"{seed}/p{pid}/"
        for stream, key in streams.items():
            if key != prefix + stream:
                raise SimulationError(
                    f"partition {pid} stream {stream!r} derived as {key!r}, "
                    f"expected prefix {prefix!r}"
                )
            other = seen.get(key)
            if other is not None:
                raise SimulationError(
                    f"partitions {other} and {pid} share RNG key {key!r}"
                )
            seen[key] = pid
