"""CLI: ``python -m repro.parallel run|ladder``.

* ``run`` — execute one model (basil / tapir / txsmr / microbench) under
  the parallel runtime with ``--workers N`` and print the merged result
  (digest, events, bench row).  ``--obs out.json`` writes the merged
  per-partition RunReport.
* ``ladder`` — the scale ladder: run the partitioned kernel microbench
  at each worker count (fresh process per measurement), print aggregate
  events/s and speedups, and record ``parallel-ladder-*`` rows into a
  ``BENCH_*.json`` baseline (merging with existing entries, like
  ``python -m repro.perf record --quick``).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys

from repro.parallel.models import ModelSpec
from repro.parallel.runtime import ParallelRunner


def ladder_spec(quick: bool, timers: int | None = None, duration: float | None = None) -> ModelSpec:
    """The scale-ladder microbench configuration.

    The standing timer population (``partitions * timers``) is what the
    ladder scales over: the sequential kernel pays one global heap (and
    its cache misses) over all of it, partitioned workers pay many small
    partition-local heaps.  128 partitions of ~8k timers is the measured
    sweet spot on this class of machine — local heaps are small enough
    to stay cache-resident while the sequential heap holds the full
    million entries.  The 0.5 ms window width keeps the per-window
    barrier (128 partition reports each) from dominating at this
    partition count.  GC freeze is on for both modes (see
    docs/parallel.md).
    """
    if quick:
        return ModelSpec(
            kind="microbench",
            partitions=128,
            timers=timers if timers is not None else 1_250,
            duration=duration if duration is not None else 0.0015,
            cross_every=64,
            lookahead=5e-4,
            gc_freeze=True,
        )
    return ModelSpec(
        kind="microbench",
        partitions=128,
        timers=timers if timers is not None else 7_812,
        duration=duration if duration is not None else 0.002,
        cross_every=64,
        lookahead=5e-4,
        gc_freeze=True,
    )


def _measure_child(conn, spec: ModelSpec, workers: int) -> None:
    result = ParallelRunner(spec, workers=workers).run()
    conn.send(
        {
            "workers": workers,
            "events": result.events,
            "wall_s": result.wall_s,
            "events_per_s": result.events_per_s,
            "digest": result.digest,
        }
    )
    conn.close()


def measure(spec: ModelSpec, workers: int) -> dict:
    """One ladder point in a fresh process (clean heap and allocator, so
    earlier measurements cannot pollute later ones)."""
    ctx = mp.get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_measure_child, args=(child, spec, workers))
    proc.start()
    child.close()
    try:
        row = parent.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(f"ladder measurement (workers={workers}) died") from None
    proc.join()
    return row


def run_ladder(spec: ModelSpec, worker_counts: list[int], tag: str) -> list[dict]:
    rows = []
    for workers in worker_counts:
        row = measure(spec, workers)
        row["bench"] = f"{tag}-w{workers}"
        rows.append(row)
        print(
            f"{row['bench']:<26} wall {row['wall_s']:7.3f}s  "
            f"{row['events_per_s']:>12,.0f} events/s  ({row['events']:,} events)"
        )
    base = rows[0]
    for row in rows[1:]:
        speedup = row["events_per_s"] / base["events_per_s"] if base["events_per_s"] else 0.0
        print(
            f"  speedup w{row['workers']} vs w{base['workers']}: {speedup:.2f}x"
        )
    return rows


def merge_bench_rows(path: str, rows: list[dict]) -> None:
    """Write ladder rows into a BENCH_*.json, preserving other entries."""
    existing: dict[str, dict] = {}
    if os.path.exists(path):
        with open(path) as fh:
            existing = {e["bench"]: e for e in json.load(fh)}
    for row in rows:
        existing[row["bench"]] = {
            "bench": row["bench"],
            "wall_s": row["wall_s"],
            "events_per_s": row["events_per_s"],
            "sim_tput": 0.0,
        }
    with open(path, "w") as fh:
        json.dump(list(existing.values()), fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.parallel")
    sub = parser.add_subparsers(dest="cmd", required=True)

    run_p = sub.add_parser("run", help="run one model under the parallel runtime")
    run_p.add_argument("--kind", default="basil",
                       choices=["basil", "tapir", "txsmr", "microbench"])
    run_p.add_argument("--workers", type=int, default=1)
    run_p.add_argument("--shards", type=int, default=2)
    run_p.add_argument("--clients", type=int, default=6)
    run_p.add_argument("--keys", type=int, default=500)
    run_p.add_argument("--workload", default="ycsb-t")
    run_p.add_argument("--duration", type=float, default=0.05)
    run_p.add_argument("--warmup", type=float, default=0.02)
    run_p.add_argument("--seed", type=int, default=2024)
    run_p.add_argument("--obs", default=None, metavar="OUT.json",
                       help="record per-partition telemetry, write merged report")
    run_p.add_argument("--faults", default=None, metavar="SCHEDULE.json",
                       help="apply a repro.faults FaultSchedule (each "
                       "partition applies its local share; stats are "
                       "summed across partitions)")
    run_p.add_argument("--timers", type=int, default=2000,
                       help="microbench: timers per partition")

    lad = sub.add_parser("ladder", help="scale ladder: events/s vs workers")
    lad.add_argument("--out", default=None, metavar="BENCH_PR6.json",
                     help="merge ladder rows into this baseline file")
    lad.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    lad.add_argument("--quick", action="store_true")
    lad.add_argument("--timers", type=int, default=None)
    lad.add_argument("--duration", type=float, default=None)

    args = parser.parse_args(argv)

    if args.cmd == "ladder":
        tag = "parallel-ladder-quick" if args.quick else "parallel-ladder"
        spec = ladder_spec(args.quick, timers=args.timers, duration=args.duration)
        print(
            f"scale ladder: {spec.partitions} partitions x {spec.timers:,} timers, "
            f"{spec.duration * 1000:.1f} ms simulated"
        )
        rows = run_ladder(spec, args.workers, tag)
        digests = {row["digest"] for row in rows if row["workers"] > 1}
        if len(digests) > 1:
            print("ERROR: windowed digests differ across worker counts")
            return 1
        if args.out:
            merge_bench_rows(args.out, rows)
            print(f"merged {len(rows)} rows into {args.out}")
        return 0

    # run
    from repro.config import SystemConfig

    schedule = None
    if args.faults:
        from repro.faults.spec import FaultSchedule

        with open(args.faults) as fh:
            schedule = FaultSchedule.from_json(fh.read())
    if args.kind == "microbench":
        spec = ModelSpec(kind="microbench", timers=args.timers,
                         duration=args.duration, gc_freeze=False)
    else:
        spec = ModelSpec(
            kind=args.kind,
            config=SystemConfig(num_shards=args.shards, seed=args.seed),
            workload=args.workload,
            workload_keys=args.keys,
            num_clients=args.clients,
            duration=args.duration,
            warmup=args.warmup,
            obs=bool(args.obs),
            fault_schedule=schedule,
        )
    result = ParallelRunner(spec, workers=args.workers).run()
    print(
        f"{args.kind}: workers={result.workers} partitions={result.partitions} "
        f"windows={result.windows}"
    )
    print(
        f"  digest {result.digest[:16]}…  events {result.events:,}  "
        f"wall {result.wall_s:.3f}s  ({result.events_per_s:,.0f} events/s)"
    )
    if result.cross_messages:
        print(
            f"  cross-partition messages {result.cross_messages:,} "
            f"(undeliverable after end: {result.undeliverable})"
        )
    if result.fault_stats is not None:
        applied = {k: v for k, v in result.fault_stats.items() if v}
        print(f"  fault stats (all partitions): {applied or 'none applied'}")
    if result.bench:
        bench = result.bench
        print(
            f"  bench: {bench.get('throughput', 0.0):,.1f} tx/s  "
            f"commit {bench.get('commit_rate', 0.0) * 100:.1f}%  "
            f"p99 {bench.get('p99_latency', 0.0) * 1000:.2f} ms"
        )
    if args.obs and result.report is not None:
        with open(args.obs, "w") as fh:
            json.dump(result.report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  wrote merged obs report to {args.obs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
