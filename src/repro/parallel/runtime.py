"""The coordinator: fork workers, barrier windows, merge results.

:class:`ParallelRunner` is the front door of :mod:`repro.parallel`.
``workers=1`` delegates to the sequential kernel (byte-identical to a
hand-built sequential run); ``workers >= 2`` builds the partition plan,
forks workers (each hosting one or more logical partitions), and drives
the windowed exchange of :mod:`repro.parallel.exchange` to completion.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.parallel.exchange import (
    Envelope,
    PartitionResult,
    WindowGrant,
    WorkerError,
    WorkerReady,
    WorkerResult,
    window_count,
)
from repro.parallel.merge import combine_digests, merge_partition_reports
from repro.parallel.models import (
    PARTITIONED_KINDS,
    ModelSpec,
    SequentialRun,
    make_plan,
)
from repro.parallel.partition import audit_rng_streams


@dataclass
class ParallelResult:
    """The merged outcome of one (possibly partitioned) run."""

    digest: str
    events: int
    workers: int
    partitions: int
    windows: int
    wall_s: float
    lookahead: float
    sim_seconds: float
    bench: dict[str, Any] | None = None
    report: dict[str, Any] | None = None  #: merged obs RunReport dict
    #: FaultInjector counters summed element-wise across partitions
    #: (None when the run carried no fault schedule).
    fault_stats: dict[str, int] | None = None
    cross_messages: int = 0
    undeliverable: int = 0  #: envelopes due after the end of the run
    per_partition: dict[int, dict[str, Any]] = field(default_factory=dict)
    #: Worker-level profiles (``spec.prof``/``spec.prof_deep``): one
    #: ``{"attr": ..., "deep": ...}`` dict per worker.  Per-partition
    #: attribution tables ride ``per_partition[pid]["prof"]``.
    prof: list[dict[str, Any]] = field(default_factory=list)

    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


class ParallelRunner:
    """Run a :class:`ModelSpec` across ``workers`` processes."""

    def __init__(self, spec: ModelSpec, workers: int = 1) -> None:
        if workers < 1:
            raise SimulationError("need at least one worker")
        if workers > 1 and spec.kind not in PARTITIONED_KINDS:
            raise SimulationError(
                f"model kind {spec.kind!r} only supports workers=1 "
                f"(partitioned kinds: {', '.join(PARTITIONED_KINDS)})"
            )
        self.spec = spec
        self.workers = workers

    def run(self) -> ParallelResult:
        if self.workers == 1:
            return self._run_sequential()
        return self._run_windowed()

    # ------------------------------------------------------------------
    def _run_sequential(self) -> ParallelResult:
        """The workers=1 path: the plain sequential kernel, no windows.

        Byte-identical (trace digest) to building the same system and
        runner by hand — pinned by the golden-digest tests.
        """
        spec = self.spec
        seq = SequentialRun(spec)
        seq.start()
        if spec.gc_freeze:
            import gc

            gc.collect()
            gc.freeze()
            gc.disable()
        deep = None
        if spec.prof_deep:
            from repro.prof.deep import DeepProfiler

            deep = DeepProfiler()
            deep.start()
        t0 = time.perf_counter()
        result = seq.run_prepared()
        wall = time.perf_counter() - t0
        if deep is not None:
            deep.stop()
        prof = []
        if spec.prof or spec.prof_deep:
            prof = [
                {
                    "attr": {},  # no exchange seams in a sequential run
                    "deep": dict(deep.collapsed) if deep is not None else None,
                }
            ]
        return ParallelResult(
            digest=result.digest,
            events=result.events,
            workers=1,
            partitions=1,
            windows=0,
            wall_s=wall,
            lookahead=0.0,
            sim_seconds=result.now,
            bench=result.bench,
            report=result.report,
            fault_stats=result.fault_stats,
            per_partition={-1: _summary(result)},
            prof=prof,
        )

    # ------------------------------------------------------------------
    def _run_windowed(self) -> ParallelResult:
        spec = self.spec
        plan = make_plan(spec)
        ownership = plan.assign_workers(self.workers)
        num_workers = len(ownership)  # capped at plan.num_partitions
        end_time = spec.end_time()
        windows = window_count(end_time, plan.lookahead)

        from repro.parallel.worker import worker_main

        ctx = mp.get_context("fork")
        pipes = []
        procs = []
        try:
            for worker_id, owned in enumerate(ownership):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(child, worker_id, spec, plan, owned),
                    daemon=True,
                )
                proc.start()
                child.close()
                pipes.append(parent)
                procs.append(proc)

            for conn in pipes:
                _expect(conn.recv(), WorkerReady)

            # Measurement starts after the build barrier: fork + system
            # construction + genesis load are setup, not simulation.
            t0 = time.perf_counter()
            pending: dict[int, list[Envelope]] = {
                pid: [] for pid in range(plan.num_partitions)
            }
            cross_messages = 0
            for window in range(windows):
                until = min((window + 1) * plan.lookahead, end_time)
                for worker_id, conn in enumerate(pipes):
                    inbound = {
                        pid: tuple(pending[pid]) for pid in ownership[worker_id]
                    }
                    for pid in ownership[worker_id]:
                        pending[pid] = []
                    conn.send(WindowGrant(window, until, inbound))
                for conn in pipes:
                    reports = _expect(conn.recv(), tuple)
                    for report in reports:
                        for env in report.outbound:
                            cross_messages += 1
                            pending[env.dst_partition].append(env)
            undeliverable = sum(len(v) for v in pending.values())

            for conn in pipes:
                conn.send(None)
            partition_results: dict[int, PartitionResult] = {}
            worker_profs: list[dict[str, Any]] = []
            for conn in pipes:
                result = _expect(conn.recv(), WorkerResult)
                for part in result.partitions:
                    partition_results[part.partition_id] = part
                if result.prof is not None:
                    worker_profs.append(result.prof)
            wall = time.perf_counter() - t0
            for proc in procs:
                proc.join(timeout=30)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for conn in pipes:
                conn.close()

        return self._merge(
            plan, partition_results, num_workers, windows, wall, cross_messages,
            undeliverable, worker_profs,
        )

    def _merge(
        self,
        plan,
        results: dict[int, PartitionResult],
        num_workers: int,
        windows: int,
        wall: float,
        cross_messages: int,
        undeliverable: int,
        worker_profs: list[dict[str, Any]] | None = None,
    ) -> ParallelResult:
        spec = self.spec
        if len(results) != plan.num_partitions:
            raise SimulationError(
                f"merge expected {plan.num_partitions} partitions, "
                f"got {sorted(results)}"
            )
        audit_rng_streams(
            spec.system_config().seed,
            {pid: r.rng_streams for pid, r in results.items()},
        )
        digest = combine_digests({pid: r.digest for pid, r in results.items()})
        fault_stats = _sum_counters(
            r.fault_stats for r in results.values() if r.fault_stats is not None
        )
        if getattr(spec, "geo", None) is not None:
            # Geo runs measure a serving tier on every partition: union
            # the per-region rows instead of taking the first bench.
            from repro.geo.runner import merge_geo_benches

            bench = merge_geo_benches(
                [r.bench for _, r in sorted(results.items()) if r.bench is not None]
            )
        else:
            bench = next(
                (r.bench for _, r in sorted(results.items()) if r.bench is not None),
                None,
            )
        if bench is not None:
            bench = _fold_into_bench(bench, results, fault_stats)
        report = None
        partials = {
            pid: r.report for pid, r in results.items() if r.report is not None
        }
        if partials:
            meta: dict[str, Any] = {"workers": num_workers, "windows": windows}
            if fault_stats is not None:
                meta["fault_stats"] = fault_stats
            report = merge_partition_reports(
                partials,
                name=spec.label or f"parallel/{spec.kind}",
                bench=bench,
                trace_digest=digest,
                meta=meta,
            )
        return ParallelResult(
            digest=digest,
            events=sum(r.events for r in results.values()),
            workers=num_workers,
            partitions=plan.num_partitions,
            windows=windows,
            wall_s=wall,
            lookahead=plan.lookahead,
            sim_seconds=max(r.now for r in results.values()),
            bench=bench,
            report=report,
            fault_stats=fault_stats,
            cross_messages=cross_messages,
            undeliverable=undeliverable,
            per_partition={pid: _summary(r) for pid, r in results.items()},
            prof=worker_profs or [],
        )


def _sum_counters(dicts) -> dict[str, int] | None:
    """Element-wise sum of counter dicts; None when the iterable is empty."""
    total: dict[str, int] | None = None
    for counters in dicts:
        if total is None:
            total = dict.fromkeys(counters, 0)
        for key, value in counters.items():
            total[key] = total.get(key, 0) + value
    return total


def _fold_into_bench(
    bench: dict[str, Any],
    results: dict[int, PartitionResult],
    fault_stats: dict[str, int] | None,
) -> dict[str, Any]:
    """Fold replica-partition state into the client partition's bench row.

    The sequential runner computes ``dropped`` and ``abort_reasons`` by
    looking at the whole system; in a partitioned run the client slice
    sees only its own network and no replicas, so the merge restores the
    sequential row schema: drops summed over every partition's network,
    abort reasons summed over the replica partitions, and (when a fault
    schedule ran) the aggregated injector counters.
    """
    from repro.bench.runner import ExperimentRunner

    bench = dict(bench)
    extra = dict(bench.get("extra") or {})
    bench["dropped"] = sum(r.messages_dropped for r in results.values())
    reasons = _sum_counters(
        r.abort_reasons for r in results.values() if r.abort_reasons is not None
    )
    if reasons:
        for reason, count in (extra.get("abort_reasons") or {}).items():
            reasons[reason] = reasons.get(reason, 0) + count
        extra["abort_reasons"] = dict(sorted(reasons.items()))
        extra["abort_taxonomy"] = ExperimentRunner._taxonomy_rollup(reasons)
    if fault_stats is not None:
        extra["fault_stats"] = dict(fault_stats)
    bench["extra"] = extra
    return bench


def _summary(result: PartitionResult) -> dict[str, Any]:
    return {
        "digest": result.digest,
        "events": result.events,
        "cross_sent": result.cross_sent,
        "cross_received": result.cross_received,
        "messages_delivered": result.messages_delivered,
        "messages_dropped": result.messages_dropped,
        **(result.extra or {}),
    }


def _expect(message: Any, kind: type) -> Any:
    if isinstance(message, WorkerError):
        raise SimulationError(f"worker {message.worker_id} failed:\n{message.error}")
    if not isinstance(message, kind):
        raise SimulationError(f"unexpected exchange message {message!r}")
    return message
