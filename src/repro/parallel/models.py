"""Model builders: turn a picklable spec into partitions or a sequential run.

A :class:`ModelSpec` is the unit shipped to worker processes: a pure
description of *what* to simulate (system kind, config, workload,
clients, durations) from which any process can build its own partitions.
Two builders exist per model:

* ``build_sequential(spec)`` — the whole system on one plain simulator
  (the ``workers=1`` path, byte-identical to a hand-built sequential
  run);
* ``build_partition(spec, plan, pid)`` — one partition's slice as a
  :class:`PartitionHost`, used by workers in windowed runs.

Supported kinds: ``basil`` and ``microbench`` build partitioned;
``tapir`` and ``txsmr`` are sequential-only (they exist so the parallel
front-end can drive all three systems with one interface, and so the
``workers=1`` golden-digest guarantee covers the baselines too).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.parallel.exchange import Envelope, PartitionResult
from repro.parallel.partition import PartitionPlan, basil_plan, uniform_plan
from repro.sim.loop import Simulator

PARTITIONED_KINDS = ("basil", "microbench")
SEQUENTIAL_KINDS = PARTITIONED_KINDS + ("tapir", "txsmr")


@dataclass(frozen=True)
class ModelSpec:
    """Picklable description of one simulated run."""

    kind: str = "basil"
    #: SystemConfig for protocol kinds (picklable frozen dataclass);
    #: None uses each system's defaults.
    config: Any = None
    workload: str = "ycsb-t"
    workload_keys: int = 500
    #: Extra workload-constructor kwargs as (name, value) pairs (tuple of
    #: pairs keeps the spec hashable/picklable) — the figure experiments
    #: use this for read/write mixes, distributions, hot-account counts.
    workload_kwargs: tuple[tuple[str, Any], ...] = ()
    num_clients: int = 6
    duration: float = 0.05
    warmup: float = 0.02
    #: Run/bench name carried into the bench row and report (defaults to
    #: the workload's own name when empty).
    label: str = ""
    #: Attach a tracer per partition and compute trace digests.
    trace: bool = True
    #: Attach an ObsRecorder per partition and merge the RunReports.
    obs: bool = False
    #: Freeze the cyclic GC after build (both modes; see docs/parallel.md).
    gc_freeze: bool = False
    #: Fault schedule (:class:`repro.faults.spec.FaultSchedule`) applied
    #: by every partition: each builds its own injector from the same
    #: serialized schedule and applies the local share (crashes on the
    #: hosting partition, link/partition faults on the sending side).
    fault_schedule: Any = None
    #: Byzantine client mix (Fig 7): the first ``byz_client_count`` of
    #: ``num_clients`` use this behaviour, matching the sequential figure
    #: path's factory order exactly.
    byz_client_behaviour: str | None = None
    byz_client_count: int = 0
    byz_faulty_fraction: float = 1.0
    #: Geo deployment (:class:`repro.geo.plan.GeoSpec`): place the basil
    #: system on a WAN topology and drive it with the geo serving tier
    #: instead of the standard closed-loop clients.  Partitioned runs use
    #: one partition per region (:func:`repro.geo.plan.geo_plan`).
    geo: Any = None
    #: Output directories threaded through the spec (NOT module globals,
    #: which forked workers cannot be handed): when set, each partition
    #: writes ``{label}-p{pid}.trace.json`` / ``.obs.json`` there.
    trace_dir: str | None = None
    obs_dir: str | None = None
    #: Attach a wall-clock attribution profiler per partition
    #: (:mod:`repro.prof`); tables ride each PartitionResult's ``extra``
    #: and merge in the profile report.  Never perturbs the schedule.
    prof: bool = False
    #: Additionally run the ``sys.setprofile`` deep profiler per worker
    #: (collapsed stacks for flamegraphs; 3-10x slower, still
    #: schedule-identical).
    prof_deep: bool = False
    # -- microbench knobs ------------------------------------------------
    partitions: int = 8
    timers: int = 2_000  #: self-rescheduling timers per partition
    cross_every: int = 64  #: one cross-partition ping per this many fires
    lookahead: float = 1e-4  #: microbench window width (seconds)

    def __post_init__(self) -> None:
        if self.kind not in SEQUENTIAL_KINDS:
            raise SimulationError(f"unknown model kind {self.kind!r}")
        if self.geo is not None:
            if self.kind != "basil":
                raise SimulationError(
                    f"geo topologies only apply to the basil model, not "
                    f"{self.kind!r}"
                )
            if self.byz_client_count:
                raise SimulationError(
                    "geo runs drive their own serving tier and do not "
                    "support the byzantine client mix"
                )

    def system_config(self) -> Any:
        if self.config is not None:
            return self.config
        from repro.config import SystemConfig

        return SystemConfig()

    def make_workload(self) -> Any:
        from repro.workloads import make_workload

        return make_workload(
            self.workload, keys=self.workload_keys, **dict(self.workload_kwargs)
        )

    def make_injector(self) -> Any:
        """A fresh FaultInjector for one partition (None: no schedule)."""
        if self.fault_schedule is None:
            return None
        from repro.faults.injector import FaultInjector

        return FaultInjector(self.fault_schedule)

    def client_factories(self, system: Any) -> Any:
        """The Fig 7 client mix against ``system`` (None: all correct)."""
        if not self.byz_client_count:
            return None
        from repro.byzantine.clients import ByzantineClient

        behaviour = self.byz_client_behaviour
        fraction = self.byz_faulty_fraction
        factories = []
        for i in range(self.num_clients):
            if i < self.byz_client_count:
                factories.append(
                    lambda s=system, b=behaviour, f=fraction: s.create_client(
                        client_class=ByzantineClient, behaviour=b, faulty_fraction=f
                    )
                )
            else:
                factories.append(lambda s=system: s.create_client())
        return factories

    def end_time(self) -> float:
        if self.kind == "microbench":
            return self.duration
        return self.warmup + self.duration + self.warmup  # + cool-down

    def artifact_stem(self, partition_id: int | None = None) -> str:
        """Filename stem for per-run artifacts (trace/obs exports)."""
        stem = (self.label or self.kind).replace("/", "-")
        if partition_id is not None:
            stem += f"-p{partition_id}"
        return stem


def make_plan(spec: ModelSpec) -> PartitionPlan:
    if spec.kind == "basil":
        if spec.geo is not None:
            from repro.geo.plan import geo_plan

            return geo_plan(spec.system_config(), spec.geo)
        return basil_plan(spec.system_config(), spec.num_clients)
    if spec.kind == "microbench":
        return uniform_plan(spec.partitions, spec.lookahead)
    raise SimulationError(
        f"model kind {spec.kind!r} is sequential-only (use workers=1)"
    )


def _replica_abort_reasons(system: Any) -> dict[str, int] | None:
    """Per-reason MVTSO abort tallies over ``system``'s local replicas.

    Mirrors ``ExperimentRunner._abort_reasons`` but runs on partitions
    that have no runner (the replica slices); None when nothing aborted
    (or the partition hosts no replicas at all).
    """
    totals: dict[str, int] = {}
    for replica in getattr(system, "replicas", {}).values():
        for reason, count in getattr(replica, "abort_reasons", {}).items():
            totals[reason] = totals.get(reason, 0) + count
    return dict(sorted(totals.items())) if totals else None


def _write_trace_artifact(spec: ModelSpec, tracer: Any, pid: int | None) -> None:
    """Write one partition's Chrome trace into ``spec.trace_dir`` (if set)."""
    if not spec.trace_dir:
        return
    import os

    from repro.trace.export import write_chrome_trace

    os.makedirs(spec.trace_dir, exist_ok=True)
    path = os.path.join(spec.trace_dir, spec.artifact_stem(pid) + ".trace.json")
    write_chrome_trace(tracer, path)


def _write_obs_artifact(spec: ModelSpec, report: Any, pid: int | None) -> None:
    """Write one partition's RunReport into ``spec.obs_dir`` (if set)."""
    if not spec.obs_dir:
        return
    import os

    from repro.obs import write_report

    os.makedirs(spec.obs_dir, exist_ok=True)
    path = os.path.join(spec.obs_dir, spec.artifact_stem(pid) + ".obs.json")
    write_report(path, report)


# ---------------------------------------------------------------------------
# Partition hosts
# ---------------------------------------------------------------------------
class PartitionHost:
    """One partition's runtime inside a worker process.

    Lifecycle: ``start()`` (schedule initial work; no events execute),
    then per window ``deliver(env)*`` + ``sim.run(until=bound)`` driven
    by the worker loop, then ``finalize()`` once all windows are done.
    Outbound cross-partition messages accumulate in ``take_outbox()``.
    """

    partition_id: int
    sim: Simulator

    def start(self) -> None:
        raise NotImplementedError

    def deliver(self, env: Envelope) -> None:
        raise NotImplementedError

    def take_outbox(self) -> tuple[Envelope, ...]:
        raise NotImplementedError

    def finalize(self) -> PartitionResult:
        raise NotImplementedError


class BasilPartitionHost(PartitionHost):
    """One Basil partition: a shard's replicas, or the client slice."""

    def __init__(self, spec: ModelSpec, plan: PartitionPlan, pid: int) -> None:
        from repro.core.system import BasilSystem

        self.spec = spec
        self.plan = plan
        self.partition_id = pid
        if spec.geo is not None:
            from repro.geo.runner import build_geo_system

            # Every geo partition hosts one region's serving tier, so
            # every partition runs its own GeoRunner (no dedicated
            # client partition).
            self.is_client_partition = False
            self.system = build_geo_system(
                spec.system_config(), spec.geo, partition=plan.slice(pid)
            )
        else:
            self.is_client_partition = pid == plan.num_partitions - 1
            self.system = BasilSystem(spec.system_config(), partition=plan.slice(pid))
        self.sim = self.system.sim
        self.tracer = None
        if spec.trace:
            from repro.trace.tracer import Tracer

            self.tracer = self.sim.attach_tracer(Tracer())
        self.profiler = None
        if spec.prof:
            from repro.prof.profiler import install_profiler

            self.profiler = install_profiler(self.sim, self.system)
        self.recorder = None
        self.runner = None
        self.injector = None
        self._outbox: list[Envelope] = []
        self._seq = 0
        self._cross_received = 0
        self.system.network.bind_partition(self._remote_send, plan.lookahead)

    def _remote_send(self, src: str, dst: str, message: Any, delay: float) -> None:
        profiler = self.sim.profiler
        if profiler.enabled:
            # The serialization seam of the parallel envelope path: the
            # pickling itself happens in the worker's pipe send
            # (exchange.pipe), but envelope construction and routing are
            # per-message and attributable here.
            profiler.begin("exchange.envelope")
            try:
                self._build_envelope(src, dst, message, delay)
            finally:
                profiler.end()
        else:
            self._build_envelope(src, dst, message, delay)

    def _build_envelope(self, src: str, dst: str, message: Any, delay: float) -> None:
        sim = self.sim
        dst_partition = self.plan.partition_of(dst)
        # The network already enforces the global lookahead; pairs with a
        # recorded per-pair floor (geo region pairs) are held to their
        # own, tighter bound so a misplaced node or a latency-model bug
        # is named by region pair instead of slipping under the window.
        floor = self.plan.pair_floor(self.partition_id, dst_partition)
        if delay < floor:
            raise SimulationError(
                f"cross-partition delay {delay:g}s for {src} -> {dst} "
                f"undercuts the "
                f"{self.plan.partition_label(self.partition_id)} <-> "
                f"{self.plan.partition_label(dst_partition)} latency floor "
                f"{floor:g}s"
            )
        self._outbox.append(
            Envelope(
                src=src,
                dst=dst,
                src_partition=self.partition_id,
                dst_partition=dst_partition,
                seq=self._seq,
                send_time=sim.now,
                deliver_time=sim.now + delay,
                payload=message,
            )
        )
        self._seq += 1

    def start(self) -> None:
        spec = self.spec
        self.injector = spec.make_injector()
        if spec.obs:
            from repro.obs.recorder import ObsRecorder

            self.recorder = ObsRecorder()
        if spec.geo is not None:
            from repro.geo.runner import GeoRunner

            region = spec.geo.topology.regions[self.partition_id]
            self.runner = GeoRunner(
                self.system,
                spec.geo,
                duration=spec.duration,
                warmup=spec.warmup,
                name=spec.label,
                recorder=self.recorder,
                injector=self.injector,
                regions=(region,),
                keep_samples=True,
            )
            self.runner.setup()
            return
        workload = spec.make_workload()
        if self.is_client_partition:
            from repro.bench.runner import ExperimentRunner

            self.runner = ExperimentRunner(
                self.system,
                workload,
                num_clients=spec.num_clients,
                duration=spec.duration,
                warmup=spec.warmup,
                name=spec.label,
                client_factories=spec.client_factories(self.system),
                injector=self.injector,
                recorder=self.recorder,
            )
            self.runner.setup(load_data=False)
        else:
            # Same relative order as ExperimentRunner.setup: injector
            # before genesis load, recorder after (crash/byz faults must
            # be armed before any traffic this partition originates).
            if self.injector is not None:
                self.injector.attach(self.system)
            self.system.load(workload.iter_data())
            if self.recorder is not None:
                self.recorder.attach(self.system, until=spec.end_time())

    def deliver(self, env: Envelope) -> None:
        self._cross_received += 1
        self.sim.call_at(
            max(env.deliver_time, self.sim.now),
            self.system.network.deliver_remote,
            env.src,
            env.dst,
            env.payload,
        )

    def take_outbox(self) -> tuple[Envelope, ...]:
        out = tuple(self._outbox)
        self._outbox.clear()
        return out

    def finalize(self) -> PartitionResult:
        spec = self.spec
        profiler = self.profiler
        bench = None
        if self.runner is not None:
            from repro.obs.report import _jsonable

            if profiler is not None:
                profiler.begin("runner.finalize")
            try:
                result = self.runner.finalize()
            finally:
                if profiler is not None:
                    profiler.end()
            if spec.byz_client_count:
                clients = getattr(self.system, "clients", [])
                result.extra["equiv_attempts"] = sum(
                    getattr(c, "equiv_attempts", 0) for c in clients
                )
                result.extra["equiv_successes"] = sum(
                    getattr(c, "equiv_successes", 0) for c in clients
                )
            bench = _jsonable(result)
        report = None
        if self.recorder is not None:
            report_obj = self.recorder.finish(
                f"parallel/p{self.partition_id}", config=self.system.config
            )
            report = report_obj.to_dict()
            _write_obs_artifact(spec, report_obj, self.partition_id)
        digest = ""
        if self.tracer is not None:
            from repro.trace.export import trace_digest

            # sha256 over every trace event — attribute it so post-run
            # reporting can't masquerade as kernel time.
            if profiler is not None:
                profiler.begin("report.digest")
            try:
                digest = trace_digest(self.tracer)
            finally:
                if profiler is not None:
                    profiler.end()
            _write_trace_artifact(spec, self.tracer, self.partition_id)
        network = self.system.network
        extra = {"prof": profiler.table()} if profiler is not None else None
        return PartitionResult(
            partition_id=self.partition_id,
            digest=digest,
            events=self.sim.events_processed,
            now=self.sim.now,
            rng_streams=self.sim.rng_streams(),
            cross_sent=self._seq,
            cross_received=self._cross_received,
            messages_delivered=network.messages_delivered,
            messages_dropped=network.messages_dropped,
            bench=bench,
            report=report,
            fault_stats=dict(self.injector.stats) if self.injector else None,
            abort_reasons=_replica_abort_reasons(self.system),
            extra=extra,
        )


class MicrobenchPartitionHost(PartitionHost):
    """The scale-ladder kernel load: a large standing timer population.

    Each partition hosts ``spec.timers`` self-rescheduling timers (fixed
    per-timer periods drawn once from the partition's ``timers`` RNG
    stream), so the pending-event population stays constant at ``K`` for
    the whole run — exactly the regime where partition-local heaps beat
    one global heap.  Every ``cross_every``-th fire emits a
    cross-partition ping with delay ``1.5 * lookahead``; deliveries fold
    into an order-independent XOR digest so sequential and windowed
    executions of the same spec can be compared exactly.
    """

    def __init__(self, spec: ModelSpec, plan: PartitionPlan, pid: int) -> None:
        self.spec = spec
        self.plan = plan
        self.partition_id = pid
        self.sim = Simulator(seed=spec.system_config().seed, partition_id=pid)
        self.profiler = None
        if spec.prof:
            from repro.prof.profiler import install_profiler

            self.profiler = install_profiler(self.sim)
        self._outbox: list[Envelope] = []
        self._seq = 0
        self._state = _MicrobenchState()
        self._cross_delay = 1.5 * plan.lookahead

    def start(self) -> None:
        _microbench_schedule(
            self.sim,
            self.sim.rng("timers"),
            self.spec,
            self._state,
            self._emit_cross,
        )

    def _emit_cross(self, dst_partition: int) -> None:
        sim = self.sim
        self._outbox.append(
            Envelope(
                src=f"p{self.partition_id}",
                dst=f"p{dst_partition}",
                src_partition=self.partition_id,
                dst_partition=dst_partition,
                seq=self._seq,
                send_time=sim.now,
                deliver_time=sim.now + self._cross_delay,
                payload=None,
            )
        )
        self._seq += 1

    def deliver(self, env: Envelope) -> None:
        self.sim.call_at(
            max(env.deliver_time, self.sim.now),
            self._state.fold_cross,
            env.deliver_time,
            env.src_partition,
            env.seq,
        )

    def take_outbox(self) -> tuple[Envelope, ...]:
        out = tuple(self._outbox)
        self._outbox.clear()
        return out

    def finalize(self) -> PartitionResult:
        state = self._state
        extra: dict[str, Any] = {"fires": state.fires}
        if self.profiler is not None:
            extra["prof"] = self.profiler.table()
        return PartitionResult(
            partition_id=self.partition_id,
            digest=state.digest(),
            events=self.sim.events_processed,
            now=self.sim.now,
            rng_streams=self.sim.rng_streams(),
            cross_sent=self._seq,
            cross_received=state.cross_received,
            extra=extra,
        )


class _MicrobenchState:
    """Per-partition microbench accumulators (order-independent fold)."""

    __slots__ = ("fires", "cross_received", "_xor")

    def __init__(self) -> None:
        self.fires = 0
        self.cross_received = 0
        self._xor = 0

    def fold_cross(self, deliver_time: float, src_partition: int, seq: int) -> None:
        self.cross_received += 1
        key = f"{deliver_time!r}/{src_partition}/{seq}".encode()
        self._xor ^= int.from_bytes(hashlib.sha256(key).digest()[:16], "big")

    def digest(self) -> str:
        payload = f"{self.fires}:{self.cross_received}:{self._xor:032x}"
        return hashlib.sha256(payload.encode()).hexdigest()


def _microbench_schedule(sim, rng, spec: ModelSpec, state: _MicrobenchState, emit_cross) -> None:
    """Install one partition's timer population on ``sim``.

    ``emit_cross(dst_partition)`` is called on every ``cross_every``-th
    fire; destinations rotate over the other partitions so the traffic
    pattern is deterministic and layout-invariant.
    """
    num_partitions = spec.partitions
    cross_every = spec.cross_every

    def fire(period: float) -> None:
        state.fires += 1
        if cross_every and state.fires % cross_every == 0:
            step = 1 + (state.fires // cross_every) % max(1, num_partitions - 1)
            emit_cross((_pid_of(sim) + step) % num_partitions)
        sim.call_later(period, fire, period)

    for _ in range(spec.timers):
        period = rng.uniform(0.0008, 0.0012)
        sim.call_later(rng.uniform(0.0, period), fire, period)


def _pid_of(sim) -> int:
    pid = sim.partition_id
    return pid if pid is not None else getattr(sim, "_virtual_pid", 0)


def build_partition(spec: ModelSpec, plan: PartitionPlan, pid: int) -> PartitionHost:
    if spec.kind == "basil":
        return BasilPartitionHost(spec, plan, pid)
    if spec.kind == "microbench":
        return MicrobenchPartitionHost(spec, plan, pid)
    raise SimulationError(f"model kind {spec.kind!r} has no partitioned build")


# ---------------------------------------------------------------------------
# Sequential builds (the workers=1 path)
# ---------------------------------------------------------------------------
class SequentialRun:
    """The whole spec on one plain simulator (no partitions, no windows).

    Construction wires everything; ``run()`` advances time to the end
    and returns a :class:`PartitionResult`-shaped summary (partition id
    -1).  For protocol kinds this is byte-identical to building the
    system and runner by hand — the golden-digest tests pin that.
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.tracer = None
        self.recorder = None
        self.runner = None
        self.injector = None
        self._micro_states: list[_MicrobenchState] = []
        if spec.kind == "microbench":
            self.sim = Simulator(seed=spec.system_config().seed)
            self.system = None
        else:
            self.system = _sequential_system(spec)
            self.sim = self.system.sim
        if spec.trace and spec.kind != "microbench":
            from repro.trace.tracer import Tracer

            self.tracer = self.sim.attach_tracer(Tracer())
        if spec.obs and spec.kind != "microbench":
            from repro.obs.recorder import ObsRecorder

            self.recorder = ObsRecorder()
        self.profiler = None
        if spec.prof:
            from repro.prof.profiler import install_profiler

            self.profiler = install_profiler(self.sim, self.system)

    def start(self) -> None:
        """Schedule all initial work without executing any event."""
        spec = self.spec
        if spec.kind == "microbench":
            self._start_microbench()
            return
        self.injector = spec.make_injector()
        if spec.geo is not None:
            from repro.geo.runner import GeoRunner

            self.runner = GeoRunner(
                self.system,
                spec.geo,
                duration=spec.duration,
                warmup=spec.warmup,
                name=spec.label,
                recorder=self.recorder,
                injector=self.injector,
            )
            self.runner.setup()
            return
        from repro.bench.runner import ExperimentRunner

        self.runner = ExperimentRunner(
            self.system,
            spec.make_workload(),
            num_clients=spec.num_clients,
            duration=spec.duration,
            warmup=spec.warmup,
            name=spec.label,
            client_factories=spec.client_factories(self.system),
            injector=self.injector,
            recorder=self.recorder,
        )
        self.runner.setup()

    def _start_microbench(self) -> None:
        """All P virtual partitions on one simulator, one global heap.

        Each virtual partition draws from ``random.Random(f"{seed}/p{i}/
        timers")`` — the exact key a partitioned simulator would derive —
        so timer populations (and therefore fires/digests) are identical
        between this build and the windowed one.  Cross-partition pings
        become plain ``call_later`` deliveries at the same virtual times.
        """
        spec = self.spec
        seed = spec.system_config().seed
        states = [_MicrobenchState() for _ in range(spec.partitions)]
        self._micro_states = states
        seqs = [0] * spec.partitions
        delay = 1.5 * spec.lookahead

        for pid in range(spec.partitions):
            rng = random.Random(f"{seed}/p{pid}/timers")

            def emit_cross(dst: int, pid: int = pid) -> None:
                seq = seqs[pid]
                seqs[pid] += 1
                self.sim.call_later(
                    delay, states[dst].fold_cross, self.sim.now + delay, pid, seq
                )

            # each virtual partition needs its own pid for ping routing
            shim = _VirtualPidSim(self.sim, pid)
            _microbench_schedule(shim, rng, spec, states[pid], emit_cross)

    def run(self) -> PartitionResult:
        self.start()
        return self.run_prepared()

    def run_prepared(self) -> PartitionResult:
        """Advance to end_time and summarize (``start()`` already called)."""
        spec = self.spec
        profiler = self.profiler
        self.sim.run(until=spec.end_time())
        bench = None
        if self.runner is not None:
            from repro.obs.report import _jsonable

            if profiler is not None:
                profiler.begin("runner.finalize")
            try:
                result = self.runner.finalize()
            finally:
                if profiler is not None:
                    profiler.end()
            if spec.byz_client_count:
                clients = getattr(self.system, "clients", [])
                result.extra["equiv_attempts"] = sum(
                    getattr(c, "equiv_attempts", 0) for c in clients
                )
                result.extra["equiv_successes"] = sum(
                    getattr(c, "equiv_successes", 0) for c in clients
                )
            bench = _jsonable(result)
        report = None
        if self.recorder is not None:
            report_obj = self.recorder.finish(
                f"sequential/{spec.kind}", config=getattr(self.system, "config", None)
            )
            report = report_obj.to_dict()
            _write_obs_artifact(spec, report_obj, None)
        if spec.kind == "microbench":
            digest = _combine_micro(self._micro_states)
        elif self.tracer is not None:
            from repro.trace.export import trace_digest

            if profiler is not None:
                profiler.begin("report.digest")
            try:
                digest = trace_digest(self.tracer)
            finally:
                if profiler is not None:
                    profiler.end()
            _write_trace_artifact(spec, self.tracer, None)
        else:
            digest = ""
        network = getattr(self.system, "network", None)
        extra = {"prof": profiler.table()} if profiler is not None else None
        return PartitionResult(
            partition_id=-1,
            digest=digest,
            events=self.sim.events_processed,
            now=self.sim.now,
            rng_streams=self.sim.rng_streams(),
            cross_sent=0,
            cross_received=sum(s.cross_received for s in self._micro_states),
            messages_delivered=getattr(network, "messages_delivered", 0),
            messages_dropped=getattr(network, "messages_dropped", 0),
            bench=bench,
            report=report,
            fault_stats=dict(self.injector.stats) if self.injector else None,
            abort_reasons=_replica_abort_reasons(self.system) if self.system else None,
            extra=extra,
        )


def _combine_micro(states: list[_MicrobenchState]) -> str:
    from repro.parallel.merge import combine_digests

    return combine_digests({pid: s.digest() for pid, s in enumerate(states)})


class _VirtualPidSim:
    """A pid-tagged view of a shared simulator (sequential microbench).

    Forwards scheduling to the real simulator; only exists so
    ``_microbench_schedule`` can ask "which partition am I?" identically
    in both builds.
    """

    __slots__ = ("_sim", "_virtual_pid")

    def __init__(self, sim: Simulator, pid: int) -> None:
        self._sim = sim
        self._virtual_pid = pid

    @property
    def partition_id(self):
        return None

    @property
    def now(self) -> float:
        return self._sim.now

    def call_later(self, delay: float, fn, *args) -> Any:
        return self._sim.call_later(delay, fn, *args)


def _sequential_system(spec: ModelSpec) -> Any:
    if spec.kind == "basil":
        if spec.geo is not None:
            from repro.geo.runner import build_geo_system

            return build_geo_system(spec.system_config(), spec.geo)
        from repro.core.system import BasilSystem

        return BasilSystem(spec.system_config())
    if spec.kind == "tapir":
        from repro.baselines.tapir.system import TapirSystem

        return TapirSystem(spec.system_config())
    if spec.kind == "txsmr":
        from repro.baselines.txsmr.system import TxSMRSystem

        return TxSMRSystem(spec.system_config())
    raise SimulationError(f"no sequential builder for {spec.kind!r}")
