"""The windowed cross-partition exchange protocol (wire records).

Workers and the coordinator speak a barrier/null-message hybrid over
``multiprocessing`` pipes.  Simulated time is cut into lookahead windows
of width ``W = plan.lookahead``; window ``k`` covers the half-open span
``(k*W, (k+1)*W]`` (the kernel's ``run(until=U)`` is inclusive of
``U``).  The protocol per window:

1. The coordinator sends every worker a :class:`WindowGrant` carrying
   the window index, the time bound, and all envelopes routed to the
   worker's partitions (messages *sent* during the previous window).
2. Each worker sorts each partition's inbound envelopes by
   :func:`envelope_order`, schedules them, runs that partition's
   simulator up to the bound, and replies with one
   :class:`WindowReport` per partition.  An empty report is the null
   message — it still advances the barrier.
3. The coordinator routes the reported envelopes into the next grant.

Conservatism: any message sent at time ``t`` in window ``k`` has
``t > k*W`` and delivery delay ``>= W`` (enforced by
``Network.bind_partition``), so its delivery time is strictly after
``(k+1)*W`` — always in a window that has not started yet.  Deliveries
that land exactly on a window boundary execute at their exact simulated
time at the start of the next window's run, which is the same virtual
time either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Envelope:
    """One cross-partition message in serializable form.

    ``seq`` is assigned per *sending partition* in send order, so the
    merge key ``(deliver_time, src_partition, seq)`` is a total order
    that is independent of how partitions are packed onto workers.
    """

    src: str
    dst: str
    src_partition: int
    dst_partition: int
    seq: int
    send_time: float
    deliver_time: float
    payload: Any


def envelope_order(env: Envelope) -> tuple[float, int, int]:
    """The stable cross-partition merge key (ties never depend on
    arrival order or worker packing)."""
    return (env.deliver_time, env.src_partition, env.seq)


def window_count(end_time: float, lookahead: float) -> int:
    """Number of lookahead windows needed to reach ``end_time``."""
    if end_time <= 0.0:
        return 0
    return max(1, math.ceil(end_time / lookahead - 1e-9))


@dataclass(frozen=True)
class WindowGrant:
    """Coordinator -> worker: permission to execute one window."""

    window: int
    until: float  #: run each partition's simulator to this bound (inclusive)
    inbound: dict[int, tuple[Envelope, ...]]  #: partition id -> envelopes


@dataclass(frozen=True)
class WindowReport:
    """Worker -> coordinator: one partition's outbound for one window.

    An empty ``outbound`` is the protocol's null message: it carries no
    traffic but proves the partition has reached the window boundary.
    """

    window: int
    partition_id: int
    outbound: tuple[Envelope, ...]


@dataclass(frozen=True)
class WorkerReady:
    """Worker -> coordinator: partitions built, measurement may start."""

    worker_id: int


@dataclass(frozen=True)
class PartitionResult:
    """One partition's contribution to the merged run result."""

    partition_id: int
    digest: str
    events: int
    now: float
    rng_streams: dict[str, str]
    cross_sent: int
    cross_received: int
    messages_delivered: int = 0
    messages_dropped: int = 0
    bench: dict[str, Any] | None = None  #: client partition only
    report: dict[str, Any] | None = None  #: obs RunReport dict, if recorded
    #: This partition's FaultInjector.stats counters (None: no injector).
    #: Each partition counts the fault actions *it* performed — link and
    #: partition faults on the sending side, crashes on the hosting side
    #: — so the campaign-level stats are the element-wise sum.
    fault_stats: dict[str, int] | None = None
    #: Per-replica MVTSO abort-reason tallies summed over this
    #: partition's replicas (replica partitions only; merged into the
    #: bench row so partitioned runs keep the sequential row schema).
    abort_reasons: dict[str, int] | None = None
    extra: dict[str, Any] | None = None


@dataclass(frozen=True)
class WorkerResult:
    """Worker -> coordinator: final report after the last window."""

    worker_id: int
    partitions: tuple[PartitionResult, ...]
    wall_s: float
    #: Worker-level profile (``spec.prof``/``spec.prof_deep`` only):
    #: ``{"attr": exchange-seam attribution table, "deep": collapsed
    #: stacks}``.  Partition-level attribution rides each
    #: PartitionResult's ``extra["prof"]`` instead.
    prof: dict[str, Any] | None = None


@dataclass(frozen=True)
class WorkerError:
    """Worker -> coordinator: the run died; ``error`` is the traceback."""

    worker_id: int
    error: str
