"""The worker-process side of the windowed exchange.

``worker_main`` is the top-level entry point each forked worker runs: it
builds its owned partitions from the (picklable) spec + plan, signals
readiness, then executes lookahead windows as the coordinator grants
them.  A worker may own several partitions (workers <= partitions);
each partition is its own simulator, so ownership cannot affect
schedules — only which process pays for them.
"""

from __future__ import annotations

import gc
import time
import traceback

from repro.parallel.exchange import (
    WindowReport,
    WorkerError,
    WorkerReady,
    WorkerResult,
    envelope_order,
)
from repro.parallel.models import ModelSpec, build_partition
from repro.parallel.partition import PartitionPlan


def worker_main(
    conn,
    worker_id: int,
    spec: ModelSpec,
    plan: PartitionPlan,
    owned: tuple[int, ...],
) -> None:
    """Run ``owned`` partitions to completion over pipe ``conn``.

    Protocol: send WorkerReady; then for each received
    :class:`WindowGrant` run every owned partition to the grant's bound
    and reply with a tuple of :class:`WindowReport`; a ``None`` grant
    ends the run, answered with a :class:`WorkerResult`.  Any exception
    is reported as a :class:`WorkerError` (traceback included) instead
    of dying silently.
    """
    try:
        profiler = None
        deep = None
        if spec.prof:
            from repro.prof.profiler import Profiler

            # Worker-level seams the per-partition profilers can't see:
            # pipe waits (coordinator barrier) and report serialization.
            profiler = Profiler()
        if spec.prof_deep:
            from repro.prof.deep import DeepProfiler

            deep = DeepProfiler()
        hosts = [build_partition(spec, plan, pid) for pid in owned]
        for host in hosts:
            host.start()
        if spec.gc_freeze:
            # The standing event population (timers, tasks, futures) is
            # long-lived; without freezing, gen-2 collections repeatedly
            # scan millions of live EventHandles and drown the
            # partition-local scheduling win.  Applied identically to the
            # sequential build by the ladder, so comparisons stay fair.
            gc.collect()
            gc.freeze()
            gc.disable()
        conn.send(WorkerReady(worker_id))
        if deep is not None:
            deep.start()
        t0 = time.perf_counter()
        while True:
            if profiler is not None:
                # Blocked on the coordinator barrier: the parallel
                # efficiency loss the attribution report must show.
                profiler.begin("exchange.wait")
                grant = conn.recv()
                profiler.end()
            else:
                grant = conn.recv()
            if grant is None:
                break
            reports = []
            for host in hosts:
                inbound = grant.inbound.get(host.partition_id, ())
                if inbound:
                    # Deterministic merge: schedule in (deliver_time,
                    # src_partition, seq) order so local event sequence
                    # numbers never depend on arrival order.
                    for env in sorted(inbound, key=envelope_order):
                        host.deliver(env)
                host.sim.run(until=grant.until)
                reports.append(
                    WindowReport(grant.window, host.partition_id, host.take_outbox())
                )
            if profiler is not None:
                # Envelope pickling onto the pipe: the serialization cost
                # of the cross-partition exchange.
                profiler.begin("exchange.pipe")
                conn.send(tuple(reports))
                profiler.end()
            else:
                conn.send(tuple(reports))
        wall = time.perf_counter() - t0
        if deep is not None:
            deep.stop()
        results = tuple(host.finalize() for host in hosts)
        prof = None
        if profiler is not None or deep is not None:
            prof = {
                "attr": profiler.table() if profiler is not None else {},
                "deep": dict(deep.collapsed) if deep is not None else None,
            }
        conn.send(WorkerResult(worker_id, results, wall, prof=prof))
    except BaseException:
        try:
            conn.send(WorkerError(worker_id, traceback.format_exc()))
        except Exception:
            pass
        raise
