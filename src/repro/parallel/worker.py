"""The worker-process side of the windowed exchange.

``worker_main`` is the top-level entry point each forked worker runs: it
builds its owned partitions from the (picklable) spec + plan, signals
readiness, then executes lookahead windows as the coordinator grants
them.  A worker may own several partitions (workers <= partitions);
each partition is its own simulator, so ownership cannot affect
schedules — only which process pays for them.
"""

from __future__ import annotations

import gc
import time
import traceback

from repro.parallel.exchange import (
    WindowReport,
    WorkerError,
    WorkerReady,
    WorkerResult,
    envelope_order,
)
from repro.parallel.models import ModelSpec, build_partition
from repro.parallel.partition import PartitionPlan


def worker_main(
    conn,
    worker_id: int,
    spec: ModelSpec,
    plan: PartitionPlan,
    owned: tuple[int, ...],
) -> None:
    """Run ``owned`` partitions to completion over pipe ``conn``.

    Protocol: send WorkerReady; then for each received
    :class:`WindowGrant` run every owned partition to the grant's bound
    and reply with a tuple of :class:`WindowReport`; a ``None`` grant
    ends the run, answered with a :class:`WorkerResult`.  Any exception
    is reported as a :class:`WorkerError` (traceback included) instead
    of dying silently.
    """
    try:
        hosts = [build_partition(spec, plan, pid) for pid in owned]
        for host in hosts:
            host.start()
        if spec.gc_freeze:
            # The standing event population (timers, tasks, futures) is
            # long-lived; without freezing, gen-2 collections repeatedly
            # scan millions of live EventHandles and drown the
            # partition-local scheduling win.  Applied identically to the
            # sequential build by the ladder, so comparisons stay fair.
            gc.collect()
            gc.freeze()
            gc.disable()
        conn.send(WorkerReady(worker_id))
        t0 = time.perf_counter()
        while True:
            grant = conn.recv()
            if grant is None:
                break
            reports = []
            for host in hosts:
                inbound = grant.inbound.get(host.partition_id, ())
                if inbound:
                    # Deterministic merge: schedule in (deliver_time,
                    # src_partition, seq) order so local event sequence
                    # numbers never depend on arrival order.
                    for env in sorted(inbound, key=envelope_order):
                        host.deliver(env)
                host.sim.run(until=grant.until)
                reports.append(
                    WindowReport(grant.window, host.partition_id, host.take_outbox())
                )
            conn.send(tuple(reports))
        wall = time.perf_counter() - t0
        results = tuple(host.finalize() for host in hosts)
        conn.send(WorkerResult(worker_id, results, wall))
    except BaseException:
        try:
            conn.send(WorkerError(worker_id, traceback.format_exc()))
        except Exception:
            pass
        raise
