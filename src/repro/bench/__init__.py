"""Benchmark harness: closed-loop clients, measurement, paper figures.

* :mod:`repro.bench.runner` — run a workload against any system
  (Basil, TAPIR, TxSMR) with closed-loop clients, warm-up exclusion and
  abort/retry handling, yielding throughput/latency/commit-rate results.
* :mod:`repro.bench.experiments` — one entry point per paper figure
  (4a/4b, 5a/5b/5c, 6a/6b, 7a/7b), with scaled-down default parameters.
* :mod:`repro.bench.report` — renders the same rows/series the paper
  reports, including ratios between systems.
"""

from repro.bench.runner import BenchResult, ExperimentRunner

__all__ = ["BenchResult", "ExperimentRunner"]
