"""One entry point per figure of the paper's evaluation (Sec 6).

Every function builds fresh systems, runs closed-loop clients on the
paper's workload for that figure, and returns a dict of
:class:`~repro.bench.runner.BenchResult` keyed the way the figure's
series are labeled.  Populations and run lengths are scaled down from
the paper's testbed (see EXPERIMENTS.md); the ``scale`` argument shrinks
them further for smoke testing.

Tuning note: as in the paper, each system runs its best-known
configuration — reply-batch size per workload (Basil), consensus batch
size per workload (TxBFT-SMaRt/TxHotStuff), and enough closed-loop
clients to reach its knee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.tapir.system import TapirSystem
from repro.baselines.txsmr.system import TxSMRSystem
from repro.bench.runner import BenchResult, ExperimentRunner
from repro.byzantine.clients import ByzantineClient
from repro.config import CryptoConfig, SystemConfig
from repro.core.system import BasilSystem
from repro.workloads.retwis import RetwisWorkload
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import YCSBWorkload, read_only_workload


@dataclass(frozen=True)
class Scale:
    """Run-size knobs; ``default`` matches EXPERIMENTS.md numbers."""

    duration: float = 0.3
    warmup: float = 0.1
    clients: int = 40
    baseline_clients: int = 80  # Tx* are latency-bound: they need more
    ycsb_keys: int = 10_000

    @classmethod
    def quick(cls) -> "Scale":
        return cls(duration=0.1, warmup=0.05, clients=12, baseline_clients=24,
                   ycsb_keys=2_000)


DEFAULT_SCALE = Scale()

#: When set (see :func:`set_trace_dir`), every ``_run`` attaches a fresh
#: tracer, prints the per-phase latency breakdown after the paper-style
#: row, and writes a Chrome trace_event JSON per benchmark into the dir.
_TRACE_DIR: str | None = None


def set_trace_dir(path: str | None) -> None:
    """Enable (or disable with ``None``) tracing for every benchmark run."""
    global _TRACE_DIR
    if path is not None:
        import os

        os.makedirs(path, exist_ok=True)
    _TRACE_DIR = path


#: When set (see :func:`set_obs_dir`), every ``_run`` attaches a fresh
#: :class:`repro.obs.ObsRecorder` and writes a RunReport JSON per
#: benchmark into the dir.
_OBS_DIR: str | None = None


def set_obs_dir(path: str | None) -> None:
    """Enable (or disable with ``None``) telemetry for every benchmark run."""
    global _OBS_DIR
    if path is not None:
        import os

        os.makedirs(path, exist_ok=True)
    _OBS_DIR = path


def _run(system, workload, clients, scale: Scale, name: str, **kwargs) -> BenchResult:
    tracer = None
    if _TRACE_DIR is not None:
        from repro.trace import Tracer

        tracer = Tracer()
    recorder = None
    if _OBS_DIR is not None:
        from repro.obs import ObsRecorder

        recorder = ObsRecorder()
    runner = ExperimentRunner(
        system, workload, num_clients=clients,
        duration=scale.duration, warmup=scale.warmup, name=name,
        tracer=tracer, recorder=recorder, **kwargs,
    )
    result = runner.run()
    if tracer is not None:
        import os

        from repro.bench.report import render_trace_summary
        from repro.trace.export import write_chrome_trace

        path = os.path.join(_TRACE_DIR, name.replace("/", "-") + ".trace.json")
        result.extra["trace_digest"] = write_chrome_trace(tracer, path)
        result.extra["trace_path"] = path
        print(render_trace_summary(tracer, f"{name} phase breakdown"))
        print(f"  trace: {path} (digest {result.extra['trace_digest'][:12]})")
    if recorder is not None:
        import os

        from repro.obs import write_report

        report = recorder.finish(
            name, bench=result, trace_digest=result.extra.get("trace_digest")
        )
        path = os.path.join(_OBS_DIR, name.replace("/", "-") + ".obs.json")
        write_report(path, report)
        result.extra["obs_path"] = path
        result.extra["health"] = report.health
        print(f"  obs: {path} (health {report.health})")
    return result


# ---------------------------------------------------------------------------
# Figure 4: application benchmarks, four systems
# ---------------------------------------------------------------------------
APP_WORKLOADS = {
    "tpcc": lambda: TPCCWorkload(num_warehouses=20, customers_per_district=20, num_items=200),
    "smallbank": lambda: SmallbankWorkload(num_accounts=20_000, hot_accounts=1_000),
    "retwis": lambda: RetwisWorkload(num_users=20_000),
}

#: Per-app tuned batch sizes (paper Sec 6.1: Basil 4 on TPC-C / 16
#: elsewhere; TxHotStuff 4; TxBFT-SMaRt 16 on TPC-C, 64 elsewhere).
APP_BATCHES = {
    "tpcc": dict(basil=4, pbft=16, hotstuff=4),
    "smallbank": dict(basil=16, pbft=64, hotstuff=16),
    "retwis": dict(basil=16, pbft=64, hotstuff=16),
}


def fig4_systems(app: str, scale: Scale = DEFAULT_SCALE) -> dict[str, BenchResult]:
    """One app (Figure 4a/4b column): throughput + latency per system."""
    batches = APP_BATCHES[app]
    make_wl = APP_WORKLOADS[app]
    results: dict[str, BenchResult] = {}

    basil = BasilSystem(SystemConfig(f=1, batch_size=batches["basil"]))
    results["basil"] = _run(basil, make_wl(), scale.clients, scale, f"basil/{app}")

    tapir = TapirSystem(SystemConfig(f=1))
    results["tapir"] = _run(tapir, make_wl(), scale.clients, scale, f"tapir/{app}")

    pbft = TxSMRSystem(
        SystemConfig(f=1, smr_batch_size=batches["pbft"], batch_size=batches["basil"]),
        protocol="pbft",
    )
    results["txbftsmart"] = _run(
        pbft, make_wl(), scale.baseline_clients, scale, f"txbftsmart/{app}"
    )

    hotstuff = TxSMRSystem(
        SystemConfig(f=1, smr_batch_size=batches["hotstuff"], batch_size=batches["basil"]),
        protocol="hotstuff",
    )
    results["txhotstuff"] = _run(
        hotstuff, make_wl(), scale.baseline_clients, scale, f"txhotstuff/{app}"
    )
    return results


# ---------------------------------------------------------------------------
# Figure 5a: cost of cryptography (Basil with vs without signatures)
# ---------------------------------------------------------------------------
def fig5a_crypto_cost(scale: Scale = DEFAULT_SCALE) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for crypto_on in (True, False):
            config = SystemConfig(
                f=1, batch_size=4 if crypto_on else 1,
                crypto=CryptoConfig(enabled=crypto_on),
            )
            system = BasilSystem(config)
            wl = YCSBWorkload(
                num_keys=scale.ycsb_keys, reads=2, writes=2, distribution=dist
            )
            name = f"basil-{tag}-{'sig' if crypto_on else 'nosig'}"
            results[name] = _run(system, wl, scale.clients, scale, name)
    return results


# ---------------------------------------------------------------------------
# Figure 5b: read quorum size (read-only workload, 24 reads/txn)
# ---------------------------------------------------------------------------
def fig5b_read_quorum(scale: Scale = DEFAULT_SCALE) -> dict[str, BenchResult]:
    results = {}
    f = 1
    # Read-only transactions are cheap per-replica; it takes ~3x the usual
    # client count to reach the replica-side knee the paper measures.
    clients = scale.clients * 3
    for label, quorum, fanout in (
        ("q=1", 1, 1), ("q=f+1", f + 1, 2 * f + 1), ("q=2f+1", 2 * f + 1, 3 * f + 1)
    ):
        config = SystemConfig(f=f, batch_size=16, read_quorum=quorum, read_fanout=fanout)
        system = BasilSystem(config)
        wl = read_only_workload(num_keys=scale.ycsb_keys, reads=24)
        results[label] = _run(system, wl, clients, scale, f"readonly-{label}")
    return results


# ---------------------------------------------------------------------------
# Figure 5c: shard scaling (1 -> 3 shards), with and without crypto
# ---------------------------------------------------------------------------
def fig5c_shard_scaling(scale: Scale = DEFAULT_SCALE) -> dict[str, BenchResult]:
    # The no-crypto runs push very high simulated throughput (millions of
    # events); a shorter window keeps wall-clock sane without changing
    # the 1-shard -> 3-shard ratios the figure reports.
    scale = Scale(
        duration=min(scale.duration, 0.15), warmup=min(scale.warmup, 0.05),
        clients=scale.clients, baseline_clients=scale.baseline_clients,
        ycsb_keys=scale.ycsb_keys,
    )
    results = {}
    for crypto_on in (True, False):
        for shards in (1, 3):
            config = SystemConfig(
                f=1, num_shards=shards, batch_size=4,
                crypto=CryptoConfig(enabled=crypto_on),
            )
            system = BasilSystem(config)
            wl = YCSBWorkload(num_keys=scale.ycsb_keys, reads=3, writes=3)
            name = f"{'sig' if crypto_on else 'nosig'}-{shards}shard"
            clients = scale.clients if shards == 1 else scale.clients * 2
            results[name] = _run(system, wl, clients, scale, name)
    return results


# ---------------------------------------------------------------------------
# Figure 6a: fast path on/off
# ---------------------------------------------------------------------------
def fig6a_fast_path(scale: Scale = DEFAULT_SCALE) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for fast in (True, False):
            config = SystemConfig(f=1, batch_size=4, fast_path_enabled=fast)
            system = BasilSystem(config)
            wl = YCSBWorkload(num_keys=scale.ycsb_keys, reads=2, writes=2, distribution=dist)
            name = f"{tag}-{'fp' if fast else 'nofp'}"
            results[name] = _run(system, wl, scale.clients, scale, name)
    return results


# ---------------------------------------------------------------------------
# Figure 6b: reply-batching sweep
# ---------------------------------------------------------------------------
def fig6b_batching(
    scale: Scale = DEFAULT_SCALE, sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for b in sizes:
            config = SystemConfig(f=1, batch_size=b)
            system = BasilSystem(config)
            wl = YCSBWorkload(num_keys=scale.ycsb_keys, reads=2, writes=2, distribution=dist)
            name = f"{tag}-b{b}"
            results[name] = _run(system, wl, scale.clients, scale, name)
    return results


# ---------------------------------------------------------------------------
# Figure 7: Basil under Byzantine client failures
# ---------------------------------------------------------------------------
FAILURE_BEHAVIOURS = ("stall-early", "stall-late", "equiv-real", "equiv-forced")


def fig7_failures(
    distribution: str,
    behaviours: tuple[str, ...] = FAILURE_BEHAVIOURS,
    byz_client_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    scale: Scale = DEFAULT_SCALE,
) -> dict[str, dict[float, BenchResult]]:
    """Correct-client throughput vs fraction of Byzantine clients.

    Byzantine clients misbehave on every admitted transaction; the
    fraction of faulty *clients* sweeps the x-axis (the paper sweeps the
    faulty-transaction percentage; with faulty_fraction=1 these
    coincide at the client granularity).
    """
    results: dict[str, dict[float, BenchResult]] = {}
    for behaviour in behaviours:
        series: dict[float, BenchResult] = {}
        for fraction in byz_client_fractions:
            config = SystemConfig(
                f=1, batch_size=4,
                allow_unjustified_st2=(behaviour == "equiv-forced"),
            )
            system = BasilSystem(config)
            wl = YCSBWorkload(
                num_keys=scale.ycsb_keys, reads=2, writes=2, distribution=distribution
            )
            num_byz = round(scale.clients * fraction)
            factories = []
            for i in range(scale.clients):
                if i < num_byz:
                    factories.append(
                        lambda s=system, b=behaviour: s.create_client(
                            client_class=ByzantineClient, behaviour=b,
                            faulty_fraction=1.0,
                        )
                    )
                else:
                    factories.append(lambda s=system: s.create_client())
            name = f"{behaviour}@{int(fraction * 100)}%"
            result = _run(
                system, wl, scale.clients, scale, name, client_factories=factories
            )
            attempts = sum(
                getattr(c, "equiv_attempts", 0) for c in system.clients
            )
            successes = sum(
                getattr(c, "equiv_successes", 0) for c in system.clients
            )
            if attempts:
                # the paper: equivocation succeeds ~0.048% of the time at
                # 40% faulty transactions on RW-Z
                result.extra["equiv_success_rate"] = successes / attempts
            series[fraction] = result
        results[behaviour] = series
    return results


def correct_tps_per_client(result: BenchResult, total_clients: int) -> float:
    """The paper's Fig 7 metric: committed tx/s per *correct* client."""
    if "correct_tps_per_client" in result.extra:
        return result.extra["correct_tps_per_client"]
    return result.throughput / max(1, total_clients)
