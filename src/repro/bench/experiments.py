"""One entry point per figure of the paper's evaluation (Sec 6).

Every function builds fresh systems, runs closed-loop clients on the
paper's workload for that figure, and returns a dict of
:class:`~repro.bench.runner.BenchResult` keyed the way the figure's
series are labeled.  Populations and run lengths are scaled down from
the paper's testbed (see EXPERIMENTS.md); the ``scale`` argument shrinks
them further for smoke testing.

Tuning note: as in the paper, each system runs its best-known
configuration — reply-batch size per workload (Basil), consensus batch
size per workload (TxBFT-SMaRt/TxHotStuff), and enough closed-loop
clients to reach its knee.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.baselines.tapir.system import TapirSystem
from repro.baselines.txsmr.system import TxSMRSystem
from repro.bench.runner import BenchResult, ExperimentRunner
from repro.config import CryptoConfig, SystemConfig


@dataclass(frozen=True)
class Scale:
    """Run-size knobs; ``default`` matches EXPERIMENTS.md numbers.

    The population fields cover every figure workload so one Scale fully
    determines a run: ``default`` is the scaled-down population the
    sequential kernel handles comfortably, ``paper()`` is the paper's
    testbed population (Sec 6.1: 10 M YCSB keys, 1 M Smallbank accounts)
    for use with ``--workers`` on the space-parallel kernel.
    """

    duration: float = 0.3
    warmup: float = 0.1
    clients: int = 40
    baseline_clients: int = 80  # Tx* are latency-bound: they need more
    ycsb_keys: int = 10_000
    smallbank_accounts: int = 20_000
    smallbank_hot: int = 1_000
    retwis_users: int = 20_000
    tpcc_warehouses: int = 20
    tpcc_customers: int = 20
    tpcc_items: int = 200

    @classmethod
    def quick(cls) -> "Scale":
        return cls(duration=0.1, warmup=0.05, clients=12, baseline_clients=24,
                   ycsb_keys=2_000)

    @classmethod
    def paper(cls) -> "Scale":
        """The paper's populations (Sec 6.1), EXPERIMENTS.md "paper" rows.

        Only the populations grow — run length and client counts stay at
        the defaults, so wall-clock is dominated by genesis streaming and
        the larger key space rather than more simulated traffic.
        """
        return cls(
            ycsb_keys=10_000_000,
            smallbank_accounts=1_000_000,
            smallbank_hot=1_000,
            retwis_users=1_000_000,
            tpcc_warehouses=20,
        )


DEFAULT_SCALE = Scale()


@dataclass(frozen=True)
class WorkloadDesc:
    """One figure workload as plain data: registry name + population +
    constructor kwargs.

    Both run paths build from this — the sequential path via
    :meth:`build`, the parallel path by copying the fields into a
    :class:`~repro.parallel.models.ModelSpec` — so a figure point is
    guaranteed to simulate the same workload at any worker count.
    """

    name: str
    keys: int
    kwargs: tuple[tuple[str, Any], ...] = ()

    def build(self):
        from repro.workloads import make_workload

        return make_workload(self.name, keys=self.keys, **dict(self.kwargs))

#: When set (see :func:`set_trace_dir`), every ``_run`` attaches a fresh
#: tracer, prints the per-phase latency breakdown after the paper-style
#: row, and writes a Chrome trace_event JSON per benchmark into the dir.
_TRACE_DIR: str | None = None


def set_trace_dir(path: str | None) -> None:
    """Enable (or disable with ``None``) tracing for every benchmark run.

    The globals only configure the *front-end*: parallel runs copy them
    into the picklable :class:`~repro.parallel.models.ModelSpec`, because
    module state mutated after workers fork would never reach them (the
    spec is the only channel into a worker process).
    """
    global _TRACE_DIR
    if path is not None:
        import os

        os.makedirs(path, exist_ok=True)
    _TRACE_DIR = path


#: When set (see :func:`set_obs_dir`), every ``_run`` attaches a fresh
#: :class:`repro.obs.ObsRecorder` and writes a RunReport JSON per
#: benchmark into the dir.
_OBS_DIR: str | None = None


def set_obs_dir(path: str | None) -> None:
    """Enable (or disable with ``None``) telemetry for every benchmark run."""
    global _OBS_DIR
    if path is not None:
        import os

        os.makedirs(path, exist_ok=True)
    _OBS_DIR = path


def _run(system, workload, clients, scale: Scale, name: str, **kwargs) -> BenchResult:
    tracer = None
    if _TRACE_DIR is not None:
        from repro.trace import Tracer

        tracer = Tracer()
    recorder = None
    if _OBS_DIR is not None:
        from repro.obs import ObsRecorder

        recorder = ObsRecorder()
    runner = ExperimentRunner(
        system, workload, num_clients=clients,
        duration=scale.duration, warmup=scale.warmup, name=name,
        tracer=tracer, recorder=recorder, **kwargs,
    )
    result = runner.run()
    if tracer is not None:
        import os

        from repro.bench.report import render_trace_summary
        from repro.trace.export import write_chrome_trace

        path = os.path.join(_TRACE_DIR, name.replace("/", "-") + ".trace.json")
        result.extra["trace_digest"] = write_chrome_trace(tracer, path)
        result.extra["trace_path"] = path
        print(render_trace_summary(tracer, f"{name} phase breakdown"))
        print(f"  trace: {path} (digest {result.extra['trace_digest'][:12]})")
    if recorder is not None:
        import os

        from repro.obs import write_report

        report = recorder.finish(
            name, bench=result, trace_digest=result.extra.get("trace_digest")
        )
        path = os.path.join(_OBS_DIR, name.replace("/", "-") + ".obs.json")
        write_report(path, report)
        result.extra["obs_path"] = path
        result.extra["health"] = report.health
        print(f"  obs: {path} (health {report.health})")
    return result


def _bench_from_dict(data: dict) -> BenchResult:
    """Rehydrate the parallel runtime's jsonable bench dict into a row."""
    known = {f.name for f in dataclasses.fields(BenchResult)}
    return BenchResult(**{k: v for k, v in data.items() if k in known})


def _run_basil(
    config: SystemConfig,
    wdesc: WorkloadDesc,
    clients: int,
    scale: Scale,
    name: str,
    workers: int = 1,
    fault_schedule=None,
    byz_behaviour: str | None = None,
    byz_count: int = 0,
) -> BenchResult:
    """One Basil figure point through the parallel front-end.

    ``workers=1`` runs the plain sequential kernel (byte-identical trace
    digests to the pre-parallel figure path — pinned by the golden-digest
    tests); ``workers>=2`` partitions by the config's shard layout
    (:func:`repro.parallel.partition.basil_plan`) and merges per-partition
    rows/reports back into the sequential schema.  Trace/obs directories
    travel inside the spec, not module globals, so forked workers write
    their per-partition artifacts too.
    """
    from repro.parallel.models import ModelSpec
    from repro.parallel.runtime import ParallelRunner

    spec = ModelSpec(
        kind="basil",
        config=config,
        workload=wdesc.name,
        workload_keys=wdesc.keys,
        workload_kwargs=wdesc.kwargs,
        num_clients=clients,
        duration=scale.duration,
        warmup=scale.warmup,
        label=name,
        trace=_TRACE_DIR is not None,
        obs=_OBS_DIR is not None,
        fault_schedule=fault_schedule,
        byz_client_behaviour=byz_behaviour,
        byz_client_count=byz_count,
        trace_dir=_TRACE_DIR,
        obs_dir=_OBS_DIR,
    )
    run = ParallelRunner(spec, workers=workers).run()
    result = _bench_from_dict(run.bench)
    if workers > 1:
        result.extra["workers"] = run.workers
        result.extra["windows"] = run.windows
    if run.fault_stats is not None:
        result.extra.setdefault("fault_stats", dict(run.fault_stats))
    if _TRACE_DIR is not None:
        import os

        result.extra["trace_digest"] = run.digest
        stem = spec.artifact_stem(None if run.workers == 1 else 0)
        path = os.path.join(_TRACE_DIR, stem + ".trace.json")
        result.extra["trace_path"] = path
        print(f"  trace: {path} (digest {run.digest[:12]})")
    if _OBS_DIR is not None and run.report is not None:
        import json
        import os

        path = os.path.join(_OBS_DIR, spec.artifact_stem() + ".obs.json")
        if run.workers > 1:
            # partitions wrote their own slices; this is the merged view
            os.makedirs(_OBS_DIR, exist_ok=True)
            with open(path, "w") as fh:
                json.dump(run.report, fh, indent=2, sort_keys=True)
        result.extra["obs_path"] = path
        result.extra["health"] = run.report.get("health", "")
        print(f"  obs: {path} (health {result.extra['health']})")
    return result


# ---------------------------------------------------------------------------
# Figure 4: application benchmarks, four systems
# ---------------------------------------------------------------------------
def app_workload_desc(app: str, scale: Scale = DEFAULT_SCALE) -> WorkloadDesc:
    """The Fig 4 application workload at ``scale``'s population."""
    if app == "tpcc":
        return WorkloadDesc("tpcc", scale.tpcc_warehouses * 100, (
            ("num_warehouses", scale.tpcc_warehouses),
            ("customers_per_district", scale.tpcc_customers),
            ("num_items", scale.tpcc_items),
        ))
    if app == "smallbank":
        return WorkloadDesc(
            "smallbank", scale.smallbank_accounts,
            (("hot_accounts", scale.smallbank_hot),),
        )
    if app == "retwis":
        return WorkloadDesc("retwis", scale.retwis_users)
    raise KeyError(f"unknown fig4 app {app!r}")


#: Zero-arg-callable factories kept for compatibility (scripts/tests build
#: app workloads directly); populations come from the Scale now.
APP_WORKLOADS = {
    app: (lambda app=app, scale=DEFAULT_SCALE: app_workload_desc(app, scale).build())
    for app in ("tpcc", "smallbank", "retwis")
}

#: Per-app tuned batch sizes (paper Sec 6.1: Basil 4 on TPC-C / 16
#: elsewhere; TxHotStuff 4; TxBFT-SMaRt 16 on TPC-C, 64 elsewhere).
APP_BATCHES = {
    "tpcc": dict(basil=4, pbft=16, hotstuff=4),
    "smallbank": dict(basil=16, pbft=64, hotstuff=16),
    "retwis": dict(basil=16, pbft=64, hotstuff=16),
}


def fig4_systems(
    app: str, scale: Scale = DEFAULT_SCALE, workers: int = 1
) -> dict[str, BenchResult]:
    """One app (Figure 4a/4b column): throughput + latency per system.

    ``workers`` parallelizes the Basil point over shard partitions; the
    baselines have no partitioned build and always run sequentially (the
    flag still applies — a fig4 sweep with ``--workers`` completes).
    """
    batches = APP_BATCHES[app]
    wdesc = app_workload_desc(app, scale)
    results: dict[str, BenchResult] = {}

    results["basil"] = _run_basil(
        SystemConfig(f=1, batch_size=batches["basil"]),
        wdesc, scale.clients, scale, f"basil/{app}", workers=workers,
    )

    tapir = TapirSystem(SystemConfig(f=1))
    results["tapir"] = _run(tapir, wdesc.build(), scale.clients, scale, f"tapir/{app}")

    pbft = TxSMRSystem(
        SystemConfig(f=1, smr_batch_size=batches["pbft"], batch_size=batches["basil"]),
        protocol="pbft",
    )
    results["txbftsmart"] = _run(
        pbft, wdesc.build(), scale.baseline_clients, scale, f"txbftsmart/{app}"
    )

    hotstuff = TxSMRSystem(
        SystemConfig(f=1, smr_batch_size=batches["hotstuff"], batch_size=batches["basil"]),
        protocol="hotstuff",
    )
    results["txhotstuff"] = _run(
        hotstuff, wdesc.build(), scale.baseline_clients, scale, f"txhotstuff/{app}"
    )
    return results


# ---------------------------------------------------------------------------
# Figure 5a: cost of cryptography (Basil with vs without signatures)
# ---------------------------------------------------------------------------
def fig5a_crypto_cost(
    scale: Scale = DEFAULT_SCALE, workers: int = 1
) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for crypto_on in (True, False):
            config = SystemConfig(
                f=1, batch_size=4 if crypto_on else 1,
                crypto=CryptoConfig(enabled=crypto_on),
            )
            wdesc = WorkloadDesc(
                "ycsb-u", scale.ycsb_keys, (("distribution", dist),)
            )
            name = f"basil-{tag}-{'sig' if crypto_on else 'nosig'}"
            results[name] = _run_basil(
                config, wdesc, scale.clients, scale, name, workers=workers
            )
    return results


# ---------------------------------------------------------------------------
# Figure 5b: read quorum size (read-only workload, 24 reads/txn)
# ---------------------------------------------------------------------------
def fig5b_read_quorum(
    scale: Scale = DEFAULT_SCALE, workers: int = 1
) -> dict[str, BenchResult]:
    results = {}
    f = 1
    # Read-only transactions are cheap per-replica; it takes ~3x the usual
    # client count to reach the replica-side knee the paper measures.
    clients = scale.clients * 3
    for label, quorum, fanout in (
        ("q=1", 1, 1), ("q=f+1", f + 1, 2 * f + 1), ("q=2f+1", 2 * f + 1, 3 * f + 1)
    ):
        config = SystemConfig(f=f, batch_size=16, read_quorum=quorum, read_fanout=fanout)
        wdesc = WorkloadDesc("ycsb-ro", scale.ycsb_keys)
        results[label] = _run_basil(
            config, wdesc, clients, scale, f"readonly-{label}", workers=workers
        )
    return results


# ---------------------------------------------------------------------------
# Figure 5c: shard scaling (1 -> 3 shards), with and without crypto
# ---------------------------------------------------------------------------
def fig5c_shard_scaling(
    scale: Scale = DEFAULT_SCALE, workers: int = 1
) -> dict[str, BenchResult]:
    # The no-crypto runs push very high simulated throughput (millions of
    # events); a shorter window keeps wall-clock sane without changing
    # the 1-shard -> 3-shard ratios the figure reports.
    scale = dataclasses.replace(
        scale,
        duration=min(scale.duration, 0.15),
        warmup=min(scale.warmup, 0.05),
    )
    results = {}
    for crypto_on in (True, False):
        for shards in (1, 3):
            config = SystemConfig(
                f=1, num_shards=shards, batch_size=4,
                crypto=CryptoConfig(enabled=crypto_on),
            )
            wdesc = WorkloadDesc(
                "ycsb-u", scale.ycsb_keys, (("reads", 3), ("writes", 3))
            )
            name = f"{'sig' if crypto_on else 'nosig'}-{shards}shard"
            clients = scale.clients if shards == 1 else scale.clients * 2
            results[name] = _run_basil(
                config, wdesc, clients, scale, name, workers=workers
            )
    return results


# ---------------------------------------------------------------------------
# Figure 6a: fast path on/off
# ---------------------------------------------------------------------------
def fig6a_fast_path(
    scale: Scale = DEFAULT_SCALE, workers: int = 1
) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for fast in (True, False):
            config = SystemConfig(f=1, batch_size=4, fast_path_enabled=fast)
            wdesc = WorkloadDesc(
                "ycsb-u", scale.ycsb_keys, (("distribution", dist),)
            )
            name = f"{tag}-{'fp' if fast else 'nofp'}"
            results[name] = _run_basil(
                config, wdesc, scale.clients, scale, name, workers=workers
            )
    return results


# ---------------------------------------------------------------------------
# Figure 6b: reply-batching sweep
# ---------------------------------------------------------------------------
def fig6b_batching(
    scale: Scale = DEFAULT_SCALE, sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    workers: int = 1,
) -> dict[str, BenchResult]:
    results = {}
    for dist, tag in (("uniform", "rw-u"), ("zipfian", "rw-z")):
        for b in sizes:
            config = SystemConfig(f=1, batch_size=b)
            wdesc = WorkloadDesc(
                "ycsb-u", scale.ycsb_keys, (("distribution", dist),)
            )
            name = f"{tag}-b{b}"
            results[name] = _run_basil(
                config, wdesc, scale.clients, scale, name, workers=workers
            )
    return results


# ---------------------------------------------------------------------------
# Figure 7: Basil under Byzantine client failures
# ---------------------------------------------------------------------------
FAILURE_BEHAVIOURS = ("stall-early", "stall-late", "equiv-real", "equiv-forced")


def fig7_crash_schedule(
    config: SystemConfig,
    scale: Scale = DEFAULT_SCALE,
    num_crashes: int = 1,
    seed: int | None = None,
):
    """A Fig 7 replica crash/restart schedule with plan-derived targets.

    Victims are drawn from the :func:`repro.parallel.partition.basil_plan`
    roster — the authoritative node-name list for the deployment — never
    from a live system's dict order, so the same seed crashes the same
    *logical* replica at any worker count (worker packing can't reshuffle
    the roster; digest-checked w1 vs w2 in the regression tests).
    Crashes land at 30% of the measured window and restart at 70%.
    """
    import random as _random

    from repro.faults.spec import CrashFault, FaultSchedule
    from repro.parallel.partition import basil_plan

    plan = basil_plan(config, scale.clients)
    replicas = sorted(n for n in plan.roster() if not n.startswith("client/"))
    rng = _random.Random(f"{seed if seed is not None else config.seed}/fig7-crashes")
    victims = rng.sample(replicas, min(num_crashes, len(replicas)))
    crash_at = scale.warmup + 0.3 * scale.duration
    restart_at = scale.warmup + 0.7 * scale.duration
    return FaultSchedule(
        name=f"fig7-crash-{num_crashes}",
        faults=tuple(
            CrashFault(node=name, at=crash_at, restart_at=restart_at)
            for name in victims
        ),
    )


def fig7_failures(
    distribution: str,
    behaviours: tuple[str, ...] = FAILURE_BEHAVIOURS,
    byz_client_fractions: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3),
    scale: Scale = DEFAULT_SCALE,
    workers: int = 1,
    fault_schedule=None,
) -> dict[str, dict[float, BenchResult]]:
    """Correct-client throughput vs fraction of Byzantine clients.

    Byzantine clients misbehave on every admitted transaction; the
    fraction of faulty *clients* sweeps the x-axis (the paper sweeps the
    faulty-transaction percentage; with faulty_fraction=1 these
    coincide at the client granularity).  ``fault_schedule`` overlays
    replica faults (see :func:`fig7_crash_schedule`) on every point; its
    injector stats end up in each row's ``extra["fault_stats"]``,
    aggregated across partitions when ``workers > 1``.
    """
    results: dict[str, dict[float, BenchResult]] = {}
    for behaviour in behaviours:
        series: dict[float, BenchResult] = {}
        for fraction in byz_client_fractions:
            config = SystemConfig(
                f=1, batch_size=4,
                allow_unjustified_st2=(behaviour == "equiv-forced"),
            )
            wdesc = WorkloadDesc(
                "ycsb-u", scale.ycsb_keys, (("distribution", distribution),)
            )
            num_byz = round(scale.clients * fraction)
            name = f"{behaviour}@{int(fraction * 100)}%"
            result = _run_basil(
                config, wdesc, scale.clients, scale, name, workers=workers,
                fault_schedule=fault_schedule,
                byz_behaviour=behaviour if num_byz else None,
                byz_count=num_byz,
            )
            attempts = result.extra.get("equiv_attempts", 0)
            successes = result.extra.get("equiv_successes", 0)
            if attempts:
                # the paper: equivocation succeeds ~0.048% of the time at
                # 40% faulty transactions on RW-Z
                result.extra["equiv_success_rate"] = successes / attempts
            series[fraction] = result
        results[behaviour] = series
    return results


def correct_tps_per_client(result: BenchResult, total_clients: int) -> float:
    """The paper's Fig 7 metric: committed tx/s per *correct* client."""
    if "correct_tps_per_client" in result.extra:
        return result.extra["correct_tps_per_client"]
    return result.throughput / max(1, total_clients)
