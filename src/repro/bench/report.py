"""Rendering experiment results the way the paper reports them.

Every row carries the fast-path rate (DESIGN.md §6.1's ≈96% number) and
the network's dropped-message count, so loss/adversary runs are visible
in the same tables.  When a benchmark ran with tracing enabled,
:func:`render_trace_summary` appends the per-phase latency breakdown.
"""

from __future__ import annotations

from repro.bench.runner import BenchResult


def render_table(title: str, results: dict[str, BenchResult]) -> str:
    """A throughput/latency table, one row per series label."""
    lines = [f"--- {title} ---"]
    for label, result in results.items():
        lines.append(f"  {result.row()}")
    return "\n".join(lines)


def render_ratio(
    title: str, results: dict[str, BenchResult], numerator: str, denominator: str
) -> str:
    num = results[numerator].throughput
    den = results[denominator].throughput
    ratio = num / den if den else float("inf")
    return f"  {title}: {numerator}/{denominator} = {ratio:.2f}x"


def throughput_ratio(results: dict[str, BenchResult], a: str, b: str) -> float:
    den = results[b].throughput
    return results[a].throughput / den if den else float("inf")


def latency_ratio(results: dict[str, BenchResult], a: str, b: str) -> float:
    den = results[b].mean_latency
    return results[a].mean_latency / den if den else float("inf")


def render_series(
    title: str, series: dict[float, BenchResult], metric: str = "correct_throughput"
) -> str:
    """A sweep series (Fig 7 style): x -> metric."""
    lines = [f"--- {title} ---"]
    for x, result in series.items():
        value = result.extra.get(metric, result.throughput)
        lines.append(f"  x={x:>6}: {value:10.1f}  ({result.row()})")
    return "\n".join(lines)


def render_trace_summary(tracer, title: str) -> str:
    """The per-phase latency breakdown for one traced benchmark run."""
    from repro.trace.analysis import render_phase_breakdown

    return render_phase_breakdown(tracer, title=title)
