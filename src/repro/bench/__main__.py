"""Command-line experiment runner.

Usage::

    python -m repro.bench fig4 --app smallbank
    python -m repro.bench fig5a
    python -m repro.bench fig5b
    python -m repro.bench fig5c
    python -m repro.bench fig6a
    python -m repro.bench fig6b
    python -m repro.bench fig7 --dist zipfian
    python -m repro.bench --quick all
    python -m repro.bench --quick --trace fig4 --app smallbank

``--quick`` and ``--trace`` are global flags and go *before* the
figure subcommand (``--app``/``--dist`` belong to their subcommands).

``--quick`` shrinks populations/durations for a fast smoke run.
``--trace [DIR]`` records every benchmark with the deterministic tracer
(:mod:`repro.trace`), prints a per-phase latency breakdown under each
table row, and writes Chrome ``trace_event`` JSON files (default
``traces/``) viewable in ``chrome://tracing`` or Perfetto.
``--obs [DIR]`` samples time-series telemetry (:mod:`repro.obs`) during
every benchmark and writes one RunReport JSON per run (default
``obs/``) for ``python -m repro.obs compare``.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import experiments as exp
from repro.bench.report import render_series, render_table


def _scale(args) -> exp.Scale:
    if getattr(args, "paper", False):
        import os

        if os.environ.get("REPRO_QUICK"):
            # CI smoke boxes can't stream 10M-key populations; honor the
            # env override so `--paper` recipes still complete there.
            print("REPRO_QUICK set: substituting quick scale for --paper")
            return exp.Scale.quick()
        return exp.Scale.paper()
    return exp.Scale.quick() if args.quick else exp.DEFAULT_SCALE


def cmd_fig4(args) -> None:
    apps = [args.app] if args.app else list(exp.APP_WORKLOADS)
    for app in apps:
        results = exp.fig4_systems(app, scale=_scale(args), workers=args.workers)
        print(render_table(f"Fig 4 — {app}", results))


def cmd_fig5a(args) -> None:
    print(render_table(
        "Fig 5a — crypto cost",
        exp.fig5a_crypto_cost(_scale(args), workers=args.workers),
    ))


def cmd_fig5b(args) -> None:
    print(render_table(
        "Fig 5b — read quorum",
        exp.fig5b_read_quorum(_scale(args), workers=args.workers),
    ))


def cmd_fig5c(args) -> None:
    print(render_table(
        "Fig 5c — shard scaling",
        exp.fig5c_shard_scaling(_scale(args), workers=args.workers),
    ))


def cmd_fig6a(args) -> None:
    print(render_table(
        "Fig 6a — fast path",
        exp.fig6a_fast_path(_scale(args), workers=args.workers),
    ))


def cmd_fig6b(args) -> None:
    print(render_table(
        "Fig 6b — batching",
        exp.fig6b_batching(_scale(args), workers=args.workers),
    ))


def cmd_fig7(args) -> None:
    scale = _scale(args)
    schedule = None
    if getattr(args, "crashes", 0):
        schedule = exp.fig7_crash_schedule(
            exp.SystemConfig(f=1, batch_size=4), scale, num_crashes=args.crashes
        )
    results = exp.fig7_failures(
        args.dist, scale=scale, workers=args.workers, fault_schedule=schedule
    )
    for behaviour, series in results.items():
        print(render_series(f"Fig 7 — {behaviour} ({args.dist})", series))


def cmd_all(args) -> None:
    cmd_fig4(args)
    cmd_fig5a(args)
    cmd_fig5b(args)
    cmd_fig5c(args)
    cmd_fig6a(args)
    cmd_fig6b(args)
    for dist in ("uniform", "zipfian"):
        args.dist = dist
        cmd_fig7(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the Basil paper's evaluation figures.",
    )
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke run")
    parser.add_argument(
        "--paper", action="store_true",
        help="paper-testbed populations (10M YCSB keys, 1M Smallbank "
        "accounts; see EXPERIMENTS.md); REPRO_QUICK=1 downgrades to "
        "--quick so smoke environments still complete",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run Basil figure points on the space-parallel kernel with "
        "N worker processes (shard-per-partition plan); baselines always "
        "run sequentially",
    )
    parser.add_argument(
        "--bench-out", default=None, metavar="BENCH_PR8.json",
        help="append a figures/<cmd>-w<N> wall-clock row into this "
        "BENCH_*.json (merging with existing entries)",
    )
    parser.add_argument(
        "--trace", nargs="?", const="traces", default=None, metavar="DIR",
        help="record a deterministic trace per benchmark; write Chrome "
        "trace_event JSON into DIR (default: traces/) and print the "
        "per-phase latency breakdown",
    )
    parser.add_argument(
        "--obs", nargs="?", const="obs", default=None, metavar="DIR",
        help="sample telemetry during every benchmark and write a "
        "repro.obs RunReport JSON per run into DIR (default: obs/); "
        "reports feed `python -m repro.obs compare`",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _passthrough(p) -> None:
        # Accept the global flags after the subcommand too (the README
        # idiom is `fig4 --workers 2`); SUPPRESS keeps an absent
        # subcommand flag from clobbering the global parse.
        p.add_argument("--workers", type=int, metavar="N",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--quick", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--paper", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    p4 = sub.add_parser("fig4", help="application throughput/latency (4 systems)")
    p4.add_argument("--app", choices=sorted(exp.APP_WORKLOADS), default=None)
    p4.set_defaults(func=cmd_fig4)
    _passthrough(p4)
    for name, func in (
        ("fig5a", cmd_fig5a), ("fig5b", cmd_fig5b), ("fig5c", cmd_fig5c),
        ("fig6a", cmd_fig6a), ("fig6b", cmd_fig6b),
    ):
        p = sub.add_parser(name)
        p.set_defaults(func=func)
        _passthrough(p)
    p7 = sub.add_parser("fig7", help="Byzantine client failure sweeps")
    p7.add_argument("--dist", choices=["uniform", "zipfian"], default="zipfian")
    p7.add_argument(
        "--crashes", type=int, default=0, metavar="N",
        help="overlay N replica crash/restart faults with plan-derived "
        "targets (same logical victims at any --workers count)",
    )
    p7.set_defaults(func=cmd_fig7)
    _passthrough(p7)
    pall = sub.add_parser("all", help="run every figure")
    pall.add_argument("--dist", default="zipfian", help=argparse.SUPPRESS)
    pall.set_defaults(func=cmd_all)
    _passthrough(pall)

    argv = list(sys.argv[1:] if argv is None else argv)
    # A bare ``--trace`` right before the subcommand would swallow the
    # subcommand name as its DIR operand; disambiguate in its favor.
    # (A directory actually named like a subcommand: use ``--trace=X``.)
    commands = {"fig4", "fig5a", "fig5b", "fig5c", "fig6a", "fig6b", "fig7", "all"}
    for flag, default_dir in (("--trace", "traces"), ("--obs", "obs")):
        if flag in argv:
            where = argv.index(flag)
            if where + 1 < len(argv) and argv[where + 1] in commands:
                argv.insert(where + 1, default_dir)
    args = parser.parse_args(argv)
    exp.set_trace_dir(args.trace)
    exp.set_obs_dir(args.obs)
    import time

    t0 = time.perf_counter()
    args.func(args)
    wall = time.perf_counter() - t0
    if args.bench_out:
        from repro.parallel.__main__ import merge_bench_rows

        row = {
            "bench": f"figures/{args.command}-w{args.workers}"
            + ("-quick" if args.quick else "-paper" if args.paper else ""),
            "wall_s": wall,
            "events_per_s": 0.0,
        }
        merge_bench_rows(args.bench_out, [row])
        print(f"figure wall-clock {wall:.3f}s -> {args.bench_out} ({row['bench']})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
