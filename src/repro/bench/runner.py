"""Closed-loop benchmark runner.

Mirrors the paper's methodology (Sec 6): clients execute in a closed
loop, re-issuing aborted transactions with exponential backoff; runs
have a warm-up and cool-down that are excluded from measurement; latency
is measured from first invocation of a transaction to the commit
notification (spanning retries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ProtocolError
from repro.sim.monitor import MeasurementWindow, Monitor


@dataclass
class BenchResult:
    """Results of one benchmark run (one configuration point)."""

    name: str
    throughput: float  # committed txns per simulated second
    mean_latency: float  # seconds
    p99_latency: float
    commit_rate: float  # commits / (commits + aborted attempts)
    fast_path_rate: float
    commits: int
    aborts: int
    duration: float
    #: Messages the network dropped over the whole run (loss + adversary).
    dropped: int = 0
    #: Open-loop load columns (repro.load); all zero in closed-loop runs
    #: and then omitted from row(), so existing tables read unchanged.
    offered_tps: float = 0.0
    goodput_tps: float = 0.0
    shed_count: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    def row(self) -> str:
        row = (
            f"{self.name:<28} {self.throughput:>10.1f} tx/s  "
            f"lat {self.mean_latency * 1000:7.2f} ms  p99 {self.p99_latency * 1000:7.2f} ms  "
            f"commit {self.commit_rate * 100:5.1f}%  fast {self.fast_path_rate * 100:5.1f}%  "
            f"drop {self.dropped}"
        )
        if self.offered_tps:
            row += f"  offered {self.offered_tps:>9.1f} tx/s  shed {self.shed_count}"
        return row


class ExperimentRunner:
    """Drives ``num_clients`` closed-loop clients over one system.

    ``system`` must expose ``sim``, ``create_client()`` and
    ``new_session(client)``; Basil, TAPIR, and TxSMR all do.  Byzantine
    client classes can be mixed in via ``client_factories``.
    """

    def __init__(
        self,
        system: Any,
        workload: Any,
        num_clients: int = 20,
        duration: float = 1.0,
        warmup: float = 0.25,
        max_retries: int = 50,
        backoff_base: float = 0.002,
        backoff_max: float = 0.05,
        name: str = "",
        client_factories: list[Callable[[], Any]] | None = None,
        tag_transactions: bool = False,
        verify_history: bool = False,
        tracer: Any = None,
        injector: Any = None,
        recorder: Any = None,
        drain: float = 0.2,
        cancel_at_end: bool = True,
    ) -> None:
        self.system = system
        self.workload = workload
        self.num_clients = num_clients
        self.duration = duration
        self.warmup = warmup
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.name = name or getattr(workload, "name", "bench")
        self.client_factories = client_factories
        self.tag_transactions = tag_transactions
        #: Run the Byz-serializability oracle over the final state
        #: (Basil systems only; see repro.verify.history).
        self.verify_history = verify_history
        #: Optional repro.trace.Tracer; attached to the system's simulator
        #: at run() so the whole benchmark is recorded.
        self.tracer = tracer
        #: Optional repro.faults.FaultInjector; armed against the system
        #: at run() so its schedule unfolds during the benchmark.
        self.injector = injector
        #: Optional repro.obs.ObsRecorder; attached to the system at run()
        #: so telemetry is sampled for the whole benchmark.
        self.recorder = recorder
        #: Fault-free time simulated after the run before verify_history
        #: (drains in-flight writebacks and recoveries).
        self.drain = drain
        #: False lets clients finish their in-flight transaction during a
        #: later drain instead of being cancelled mid-2PC (which strands
        #: prepared-but-undecided state the way a crashed client would).
        self.cancel_at_end = cancel_at_end
        self.monitor = Monitor(
            window=MeasurementWindow(start=warmup, end=warmup + duration)
        )

    # ------------------------------------------------------------------
    def run(self) -> BenchResult:
        end_time = self.setup()
        self.system.sim.run(until=end_time)
        return self.finalize()

    def setup(self, load_data: bool = True) -> float:
        """Wire up the benchmark without advancing time; returns end_time.

        ``run()`` is ``setup(); sim.run(until=end_time); finalize()`` —
        the split exists for the space-parallel runtime
        (:mod:`repro.parallel`), whose worker advances time in lookahead
        windows between the two halves.  ``load_data=False`` skips the
        genesis load for partitions that host no replicas (the client
        slice streams nothing anyway, but skipping avoids generating the
        whole population just to discard it).
        """
        sim = self.system.sim
        if self.tracer is not None:
            sim.attach_tracer(self.tracer)
        if self.injector is not None:
            self.injector.attach(self.system)
        if load_data:
            self.system.load(self.workload.iter_data())
        end_time = self.warmup + self.duration + self.warmup  # + cool-down
        if self.recorder is not None:
            self.recorder.attach(self.system, until=end_time)
        self._tasks = []
        self._end_time = end_time
        self.correct_clients = 0
        self.byz_clients = 0
        for i in range(self.num_clients):
            if self.client_factories is not None:
                client = self.client_factories[i % len(self.client_factories)]()
            else:
                client = self.system.create_client()
            if getattr(client, "byzantine", False):
                self.byz_clients += 1
            else:
                self.correct_clients += 1
            rng = sim.rng(f"bench-client-{i}")
            self._tasks.append(
                sim.create_task(
                    self._client_loop(client, rng, end_time), name=f"bench-{i}"
                )
            )
        return end_time

    def finalize(self) -> BenchResult:
        """Tear down after time has reached ``end_time``; returns results."""
        sim = self.system.sim
        if self.cancel_at_end:
            for task in self._tasks:
                task.cancel()
        if self.verify_history:
            from repro.verify.history import HistoryChecker

            sim.run(until=self._end_time + self.drain)  # drain writebacks
            HistoryChecker(self.system).assert_ok()
        return self._result()

    async def _client_loop(self, client: Any, rng, end_time: float) -> None:
        sim = self.system.sim
        is_byz = getattr(client, "byzantine", False)
        group = "byz" if is_byz else "correct"
        while sim.now < end_time:
            task = self.workload.next_transaction(rng)
            started = sim.now
            retries = 0
            while True:
                session = self.system.new_session(client)
                try:
                    await task.body(session)
                    result = await session.commit()
                except ProtocolError:
                    self.monitor.record_event(sim.now, "protocol_errors")
                    break
                if result.committed:
                    tag = task.name if self.tag_transactions else group
                    self.monitor.record_commit(
                        sim.now, sim.now - started, result.fast_path, tag=tag
                    )
                    break
                self.monitor.record_abort(sim.now, tag=group)
                if is_byz:
                    break  # faulty aborted txns are not retried (Sec 6.4)
                retries += 1
                if retries > self.max_retries or sim.now >= end_time:
                    self.monitor.record_event(sim.now, "gave_up")
                    break
                backoff = min(self.backoff_max, self.backoff_base * (2 ** (retries - 1)))
                await sim.sleep(rng.uniform(0, backoff))

    # ------------------------------------------------------------------
    def _result(self) -> BenchResult:
        monitor = self.monitor
        extra = {}
        correct = getattr(self, "correct_clients", self.num_clients)
        if getattr(self, "byz_clients", 0):
            correct_commits = monitor.counter("commits", tag="correct").value
            extra["correct_throughput"] = correct_commits / self.duration
            extra["correct_tps_per_client"] = (
                correct_commits / self.duration / max(1, correct)
            )
            extra["byz_commits"] = monitor.counter("commits", tag="byz").value
        reasons = self._abort_reasons()
        if reasons:
            extra["abort_reasons"] = reasons
            extra["abort_taxonomy"] = self._taxonomy_rollup(reasons)
        return BenchResult(
            name=self.name,
            throughput=monitor.throughput(),
            mean_latency=monitor.mean_latency(),
            p99_latency=monitor.p99_latency(),
            commit_rate=monitor.commit_rate(),
            fast_path_rate=monitor.fast_path_rate(),
            commits=monitor.counter("commits").value,
            aborts=monitor.counter("aborts").value,
            duration=self.duration,
            dropped=getattr(getattr(self.system, "network", None), "messages_dropped", 0),
            extra=extra,
        )

    def _abort_reasons(self) -> dict[str, int]:
        """Sum per-replica MVTSO abort reasons over the whole system.

        Basil replicas tally these unconditionally (plain dict increments,
        no telemetry needed); baseline systems have no such dict and
        contribute nothing.
        """
        totals: dict[str, int] = {}
        for replica in getattr(self.system, "replicas", {}).values():
            for reason, count in getattr(replica, "abort_reasons", {}).items():
                totals[reason] = totals.get(reason, 0) + count
        return dict(sorted(totals.items()))

    @staticmethod
    def _taxonomy_rollup(reasons: dict[str, int]) -> dict[str, int]:
        from repro.core.mvtso import classify_abort

        rollup: dict[str, int] = {}
        for reason, count in reasons.items():
            bucket = classify_abort(reason)
            rollup[bucket] = rollup.get(bucket, 0) + count
        return dict(sorted(rollup.items()))
