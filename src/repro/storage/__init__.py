"""Multiversion storage substrate.

Each Basil replica owns a :class:`~repro.storage.versionstore.VersionStore`:
per-key chains of committed and prepared versions, read timestamps (RTS),
and the read-index needed by MVTSO-Check steps 3-5 (Algorithm 1).

The store is deliberately generic over the timestamp type — anything
totally ordered works — so it is reused by the TAPIR and TxSMR baselines.
"""

from repro.storage.versionstore import Version, VersionStatus, VersionStore

__all__ = ["Version", "VersionStatus", "VersionStore"]
