"""A multiversioned key-value store with prepared/committed visibility.

This is the storage substrate under one replica.  It tracks, per key:

* **committed versions** — ordered by writer timestamp, visible to reads;
* **prepared versions** — writes of transactions that passed MVTSO-Check
  but have not yet committed (Basil makes these visible so other clients
  can pick up dependencies, Sec 4.1);
* **read timestamps (RTS)** — reservations left by reads, which cause
  lower-timestamped writers to abort (MVTSO-Check step 5);
* **read index** — which (prepared|committed) transaction read which
  version, needed by MVTSO-Check step 4.

Timestamps are opaque, totally ordered values (Basil uses
``(time, client_id)`` tuples via :class:`repro.core.timestamps.Timestamp`).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Any, Generic, Hashable, Iterable, TypeVar

from repro.errors import StorageError
from repro.prof.profiler import NULL_PROFILER

TS = TypeVar("TS")
Key = Hashable


class VersionStatus(enum.Enum):
    PREPARED = "prepared"
    COMMITTED = "committed"


@dataclass(frozen=True)
class Version(Generic[TS]):
    """One version of one key, created by the write of one transaction."""

    key: Any
    timestamp: TS
    value: Any
    writer: bytes  # transaction id (digest) that wrote this version
    status: VersionStatus = VersionStatus.COMMITTED

    def canonical_fields(self) -> tuple:
        return (self.key, self.timestamp, self.value, self.writer, self.status.value)


@dataclass
class _KeyState:
    """Per-key bookkeeping. All lists are kept sorted by timestamp."""

    committed: list[tuple[Any, Version]] = field(default_factory=list)
    prepared: list[tuple[Any, Version]] = field(default_factory=list)
    #: Read-timestamp reservations: sorted list of timestamps.
    rts: list[Any] = field(default_factory=list)
    #: Reads by prepared/committed transactions: sorted by reader timestamp,
    #: entries are (reader_ts, version_ts_read, reader_txid).
    reads: list[tuple[Any, Any, bytes]] = field(default_factory=list)


class VersionStore(Generic[TS]):
    """Multiversion store for one replica (or one baseline shard server)."""

    #: Wall-clock attribution hook (see repro.prof).  The store has no
    #: simulator reference, so ``install_profiler`` points this class
    #: attribute's per-instance override at the run's profiler; the
    #: default NULL_PROFILER keeps the probe hot paths one attribute
    #: read away from unprofiled.
    profiler = NULL_PROFILER

    def __init__(self) -> None:
        self._keys: dict[Key, _KeyState] = {}

    def _state(self, key: Key) -> _KeyState:
        state = self._keys.get(key)
        if state is None:
            state = _KeyState()
            self._keys[key] = state
        return state

    def __contains__(self, key: Key) -> bool:
        state = self._keys.get(key)
        return bool(state and state.committed)

    def keys(self) -> Iterable[Key]:
        return self._keys.keys()

    def stats(self) -> dict[str, int]:
        """Size counters for observability probes (pure observation).

        Walks the per-key state; intended for periodic sampling (the
        obs ticker), not per-operation paths.
        """
        committed = prepared = rts = reads = 0
        for state in self._keys.values():
            committed += len(state.committed)
            prepared += len(state.prepared)
            rts += len(state.rts)
            reads += len(state.reads)
        return {
            "keys": len(self._keys),
            "committed_versions": committed,
            "prepared_versions": prepared,
            "rts_reservations": rts,
            "read_index_entries": reads,
        }

    # ------------------------------------------------------------------
    # Loading / committed writes
    # ------------------------------------------------------------------
    def apply_committed_write(self, key: Key, timestamp: TS, value: Any, writer: bytes) -> None:
        """Insert a committed version at its timestamp position.

        Versions may arrive out of timestamp order (replicas process
        transactions independently); insertion keeps the chain sorted, as
        the paper's proof of Lemma 1 requires.
        """
        state = self._state(key)
        version = Version(key, timestamp, value, writer, VersionStatus.COMMITTED)
        # Chains hold (timestamp, Version) pairs; probing with the 1-tuple
        # ``(timestamp,)`` bisects on the timestamp alone (a shorter tuple
        # sorts before any equal-prefix longer one) without a per-probe
        # ``key=`` callable — these run on every read and MVTSO check.
        idx = bisect.bisect_left(state.committed, (timestamp,))
        if idx < len(state.committed) and state.committed[idx][0] == timestamp:
            existing = state.committed[idx][1]
            if existing.writer != writer:
                raise StorageError(
                    f"two committed writers at the same timestamp on {key!r}"
                )
            return  # duplicate writeback delivery: idempotent
        state.committed.insert(idx, (timestamp, version))

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def latest_committed(self, key: Key, before: TS) -> Version | None:
        """Highest-timestamped committed version with ts < ``before``."""
        profiler = self.profiler
        if profiler.enabled:
            profiler.begin("store.probe")
            try:
                return self._latest_committed(key, before)
            finally:
                profiler.end()
        return self._latest_committed(key, before)

    def _latest_committed(self, key: Key, before: TS) -> Version | None:
        state = self._keys.get(key)
        if not state or not state.committed:
            return None
        idx = bisect.bisect_left(state.committed, (before,))
        if idx == 0:
            return None
        return state.committed[idx - 1][1]

    def latest_prepared(self, key: Key, before: TS) -> Version | None:
        """Highest-timestamped prepared version with ts < ``before``."""
        profiler = self.profiler
        if profiler.enabled:
            profiler.begin("store.probe")
            try:
                return self._latest_prepared(key, before)
            finally:
                profiler.end()
        return self._latest_prepared(key, before)

    def _latest_prepared(self, key: Key, before: TS) -> Version | None:
        state = self._keys.get(key)
        if not state or not state.prepared:
            return None
        idx = bisect.bisect_left(state.prepared, (before,))
        if idx == 0:
            return None
        return state.prepared[idx - 1][1]

    def update_rts(self, key: Key, timestamp: TS) -> None:
        """Record a read reservation at ``timestamp`` (idempotent)."""
        profiler = self.profiler
        if profiler.enabled:
            profiler.begin("store.probe")
            try:
                self._update_rts(key, timestamp)
            finally:
                profiler.end()
            return
        self._update_rts(key, timestamp)

    def _update_rts(self, key: Key, timestamp: TS) -> None:
        state = self._state(key)
        idx = bisect.bisect_left(state.rts, timestamp)
        if idx < len(state.rts) and state.rts[idx] == timestamp:
            return
        state.rts.insert(idx, timestamp)

    def remove_rts(self, key: Key, timestamp: TS) -> None:
        """Drop a read reservation (client-initiated abort, Sec 4.1)."""
        state = self._keys.get(key)
        if not state:
            return
        idx = bisect.bisect_left(state.rts, timestamp)
        if idx < len(state.rts) and state.rts[idx] == timestamp:
            state.rts.pop(idx)

    def max_rts(self, key: Key) -> TS | None:
        state = self._keys.get(key)
        if not state or not state.rts:
            return None
        return state.rts[-1]

    # ------------------------------------------------------------------
    # Prepare / commit / abort lifecycle
    # ------------------------------------------------------------------
    def add_prepared_write(self, key: Key, timestamp: TS, value: Any, writer: bytes) -> None:
        state = self._state(key)
        version = Version(key, timestamp, value, writer, VersionStatus.PREPARED)
        idx = bisect.bisect_left(state.prepared, (timestamp,))
        if idx < len(state.prepared) and state.prepared[idx][0] == timestamp:
            return  # duplicate prepare: idempotent
        state.prepared.insert(idx, (timestamp, version))

    def add_read(self, key: Key, reader_ts: TS, version_read: TS, reader: bytes) -> None:
        """Index a read performed by a now-prepared transaction."""
        state = self._state(key)
        entry = (reader_ts, version_read, reader)
        idx = bisect.bisect_left(state.reads, entry)
        if idx < len(state.reads) and state.reads[idx] == entry:
            return
        state.reads.insert(idx, entry)

    def remove_prepared_write(self, key: Key, timestamp: TS) -> None:
        state = self._keys.get(key)
        if not state:
            return
        idx = bisect.bisect_left(state.prepared, (timestamp,))
        if idx < len(state.prepared) and state.prepared[idx][0] == timestamp:
            state.prepared.pop(idx)

    def remove_read(self, key: Key, reader_ts: TS, version_read: TS, reader: bytes) -> None:
        state = self._keys.get(key)
        if not state:
            return
        entry = (reader_ts, version_read, reader)
        idx = bisect.bisect_left(state.reads, entry)
        if idx < len(state.reads) and state.reads[idx] == entry:
            state.reads.pop(idx)

    def promote_prepared_write(self, key: Key, timestamp: TS) -> None:
        """Move a prepared version into the committed chain."""
        state = self._state(key)
        idx = bisect.bisect_left(state.prepared, (timestamp,))
        if idx >= len(state.prepared) or state.prepared[idx][0] != timestamp:
            return  # already promoted (duplicate writeback) or never prepared here
        _, version = state.prepared.pop(idx)
        self.apply_committed_write(key, timestamp, version.value, version.writer)

    # ------------------------------------------------------------------
    # Conflict queries used by MVTSO-Check
    # ------------------------------------------------------------------
    def writes_between(self, key: Key, low: TS, high: TS) -> list[Version]:
        """Committed or prepared versions with low < ts < high.

        MVTSO-Check step 3: a write in this window means transaction with
        read (key, version=low) and timestamp high missed it.
        """
        profiler = self.profiler
        if profiler.enabled:
            profiler.begin("store.probe")
            try:
                return self._writes_between(key, low, high)
            finally:
                profiler.end()
        return self._writes_between(key, low, high)

    def _writes_between(self, key: Key, low: TS, high: TS) -> list[Version]:
        state = self._keys.get(key)
        if not state:
            return []
        found: list[Version] = []
        for chain in (state.committed, state.prepared):
            # At most one entry per timestamp, so "first ts > low" is
            # "first ts >= low, plus one on an exact hit".
            lo = bisect.bisect_left(chain, (low,))
            if lo < len(chain) and chain[lo][0] == low:
                lo += 1
            hi = bisect.bisect_left(chain, (high,))
            found.extend(v for _, v in chain[lo:hi])
        return found

    def reads_spanning(self, key: Key, write_ts: TS) -> list[tuple[Any, Any, bytes]]:
        """Reads by prepared/committed txns with version_read < write_ts < reader_ts.

        MVTSO-Check step 4: such a reader should have observed our write
        but could not have.
        """
        profiler = self.profiler
        if profiler.enabled:
            profiler.begin("store.probe")
            try:
                return self._reads_spanning(key, write_ts)
            finally:
                profiler.end()
        return self._reads_spanning(key, write_ts)

    def _reads_spanning(self, key: Key, write_ts: TS) -> list[tuple[Any, Any, bytes]]:
        state = self._keys.get(key)
        if not state:
            return []
        reads = state.reads
        lo = bisect.bisect_left(reads, (write_ts,))
        while lo < len(reads) and reads[lo][0] == write_ts:
            lo += 1
        return [e for e in reads[lo:] if e[1] < write_ts]

    def has_rts_above(self, key: Key, timestamp: TS) -> bool:
        """MVTSO-Check step 5: an RTS above our write timestamp exists."""
        top = self.max_rts(key)
        return top is not None and top > timestamp

    # ------------------------------------------------------------------
    # Introspection (tests, invariant checks)
    # ------------------------------------------------------------------
    def committed_versions(self, key: Key) -> list[Version]:
        state = self._keys.get(key)
        return [v for _, v in state.committed] if state else []

    def prepared_versions(self, key: Key) -> list[Version]:
        state = self._keys.get(key)
        return [v for _, v in state.prepared] if state else []

    def check_invariants(self) -> None:
        """Raise StorageError if any per-key ordering invariant is broken."""
        for key, state in self._keys.items():
            for chain in (state.committed, state.prepared):
                stamps = [ts for ts, _ in chain]
                if stamps != sorted(stamps):
                    raise StorageError(f"unsorted version chain for {key!r}")
                if len(set(stamps)) != len(stamps):
                    raise StorageError(f"duplicate version timestamp for {key!r}")
            if state.rts != sorted(state.rts):
                raise StorageError(f"unsorted RTS list for {key!r}")
